"""Tests for reprolint (src/repro/analysis): engine, rules, CLI.

Each rule gets at least one true-positive fixture and one
pragma-suppressed twin; the suite closes with the self-check that the
shipped source tree lints clean — the same gate CI runs.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    default_rules,
    lint_paths,
    render_rule_table,
    run_lint,
)
from repro.analysis.engine import (
    Finding,
    SourceModule,
    load_project,
    resolve_rules,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint_source(tmp_path: Path, source: str, *, name: str = "mod.py", select=None):
    """Write one fixture module and lint it with the default rules."""
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return lint_paths([str(path)], select=select)


def rule_ids(report):
    return [finding.rule for finding in report.findings]


# ----------------------------------------------------------------------
# R001 — seed discipline
# ----------------------------------------------------------------------
class TestSeedDiscipline:
    def test_unseeded_default_rng_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import numpy as np\n"
            "def sample():\n"
            "    return np.random.default_rng().random()\n",
            select=["R001"],
        )
        assert rule_ids(report) == ["R001"]
        assert "unseeded" in report.findings[0].message

    def test_seeded_default_rng_clean(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import numpy as np\n"
            "def sample(seed):\n"
            "    return np.random.default_rng(seed)\n",
            select=["R001"],
        )
        assert report.findings == []

    def test_legacy_numpy_global_state_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import numpy as np\n"
            "np.random.seed(0)\n"
            "x = np.random.rand(3)\n",
            select=["R001"],
        )
        assert rule_ids(report) == ["R001", "R001"]

    def test_stdlib_random_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import random\n"
            "def pick(items):\n"
            "    return random.choice(items)\n",
            select=["R001"],
        )
        assert rule_ids(report) == ["R001"]

    def test_from_random_import_flagged(self, tmp_path):
        report = lint_source(
            tmp_path, "from random import shuffle\n", select=["R001"]
        )
        assert rule_ids(report) == ["R001"]

    def test_time_derived_seed_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import time\n"
            "import numpy as np\n"
            "rng = np.random.default_rng(int(time.time()))\n",
            select=["R001"],
        )
        assert rule_ids(report) == ["R001"]
        assert "time-derived" in report.findings[0].message

    def test_rng_module_exempt(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import numpy as np\n"
            "def fresh():\n"
            "    return np.random.default_rng()\n",
            name="rng.py",
            select=["R001"],
        )
        assert report.findings == []

    def test_pragma_suppresses(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import random\n"
            "def pick(items):\n"
            "    return random.choice(items)  # reprolint: disable=R001 - test fixture\n",
            select=["R001"],
        )
        assert report.findings == []
        assert report.suppressed == 1


# ----------------------------------------------------------------------
# R002 — lock-guard discipline
# ----------------------------------------------------------------------
LOCKED_CLASS_BAD = """\
import threading

class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0  # init writes are exempt

    def bump(self):
        with self._lock:
            self._count += 1

    def reset(self):
        self._count = 0  # unguarded write to a guarded attr
"""

LOCKED_CLASS_GOOD = """\
import threading

class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def bump(self):
        with self._lock:
            self._count += 1

    def reset(self):
        with self._lock:
            self._count = 0
"""


class TestLockGuard:
    def test_unguarded_write_flagged(self, tmp_path):
        report = lint_source(tmp_path, LOCKED_CLASS_BAD, select=["R002"])
        assert rule_ids(report) == ["R002"]
        assert "_count" in report.findings[0].message

    def test_guarded_class_clean(self, tmp_path):
        report = lint_source(tmp_path, LOCKED_CLASS_GOOD, select=["R002"])
        assert report.findings == []

    def test_container_mutation_counts_as_write(self, tmp_path):
        source = (
            "class Q:\n"
            "    def put(self, item):\n"
            "        with self._cond:\n"
            "            self._items.append(item)\n"
            "    def drop(self):\n"
            "        self._items.clear()\n"
        )
        report = lint_source(tmp_path, source, select=["R002"])
        assert rule_ids(report) == ["R002"]

    def test_pragma_suppresses(self, tmp_path):
        source = LOCKED_CLASS_BAD.replace(
            "self._count = 0  # unguarded write to a guarded attr",
            "self._count = 0  # reprolint: disable=R002 - single-threaded test fixture",
        )
        report = lint_source(tmp_path, source, select=["R002"])
        assert report.findings == []
        assert report.suppressed == 1


# ----------------------------------------------------------------------
# R003 — protocol op parity
# ----------------------------------------------------------------------
SENDER_MODULE = """\
class Client:
    def ping(self):
        return self.conn.request("ping")

    def evict(self):
        return self.conn.request("evict")
"""

HANDLER_MODULE = """\
class Worker:
    def op_ping(self, payload):
        return {}
"""


class TestProtocolParity:
    def test_sent_without_handler_flagged(self, tmp_path):
        (tmp_path / "client.py").write_text(SENDER_MODULE, encoding="utf-8")
        (tmp_path / "worker.py").write_text(HANDLER_MODULE, encoding="utf-8")
        report = lint_paths([str(tmp_path)], select=["R003"])
        assert rule_ids(report) == ["R003"]
        assert "'evict'" in report.findings[0].message
        assert report.findings[0].path.endswith("client.py")

    def test_handled_without_sender_flagged(self, tmp_path):
        (tmp_path / "client.py").write_text(
            "class Client:\n"
            "    def ping(self):\n"
            "        return self.conn.request(\"ping\")\n",
            encoding="utf-8",
        )
        (tmp_path / "worker.py").write_text(
            HANDLER_MODULE + "\n    def op_orphan(self, payload):\n        return {}\n",
            encoding="utf-8",
        )
        report = lint_paths([str(tmp_path)], select=["R003"])
        assert rule_ids(report) == ["R003"]
        assert "'orphan'" in report.findings[0].message

    def test_comparison_handlers_need_recv_evidence(self, tmp_path):
        # `op == "insert"` in a module that never receives frames is a
        # parser, not a protocol handler (the change-log event format)
        (tmp_path / "events.py").write_text(
            "def parse(op, payload):\n"
            "    if op == \"insert\":\n"
            "        return payload\n",
            encoding="utf-8",
        )
        report = lint_paths([str(tmp_path)], select=["R003"])
        assert report.findings == []

    def test_comparison_handler_with_recv_counts(self, tmp_path):
        (tmp_path / "server.py").write_text(
            "def serve(conn):\n"
            "    op, payload = conn.recv()\n"
            "    if op == \"ping\":\n"
            "        conn.send(\"ok\", {})\n",
            encoding="utf-8",
        )
        (tmp_path / "client.py").write_text(
            "def ping(conn):\n"
            "    return conn.request(\"ping\")\n",
            encoding="utf-8",
        )
        report = lint_paths([str(tmp_path)], select=["R003"])
        assert report.findings == []

    def test_reply_statuses_are_not_ops(self, tmp_path):
        (tmp_path / "server.py").write_text(
            "def serve(conn):\n"
            "    op, payload = conn.recv()\n"
            "    if op == \"ping\":\n"
            "        conn.send(\"ok\", {})\n"
            "        conn.send(\"error\", {})\n",
            encoding="utf-8",
        )
        (tmp_path / "client.py").write_text(
            "def ping(conn):\n"
            "    return conn.request(\"ping\")\n",
            encoding="utf-8",
        )
        report = lint_paths([str(tmp_path)], select=["R003"])
        assert report.findings == []

    def test_skipped_when_no_handlers_in_scan(self, tmp_path):
        report = lint_source(tmp_path, SENDER_MODULE, select=["R003"])
        assert report.findings == []

    def test_pragma_suppresses(self, tmp_path):
        (tmp_path / "client.py").write_text(
            "class Client:\n"
            "    def evict(self):\n"
            "        return self.conn.request(\"evict\")  # reprolint: disable=R003 - next protocol rev\n",
            encoding="utf-8",
        )
        (tmp_path / "worker.py").write_text(HANDLER_MODULE, encoding="utf-8")
        report = lint_paths([str(tmp_path)], select=["R003"])
        # the orphaned op_ping handler still reports; the sent-op is waived
        assert all("'evict'" not in f.message for f in report.findings)
        assert report.suppressed == 1


# ----------------------------------------------------------------------
# R004 — exception chaining
# ----------------------------------------------------------------------
class TestExceptionChaining:
    def test_unchained_raise_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except KeyError:\n"
            "        raise ValueError(\"bad\")\n",
            select=["R004"],
        )
        assert rule_ids(report) == ["R004"]

    def test_chained_and_bare_raise_clean(self, tmp_path):
        report = lint_source(
            tmp_path,
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except KeyError as err:\n"
            "        raise ValueError(\"bad\") from err\n"
            "    except TypeError:\n"
            "        raise ValueError(\"bad\") from None\n"
            "    except Exception:\n"
            "        raise\n",
            select=["R004"],
        )
        assert report.findings == []

    def test_nested_function_resets_handler_scope(self, tmp_path):
        report = lint_source(
            tmp_path,
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except KeyError:\n"
            "        def fallback():\n"
            "            raise ValueError(\"not in the handler at runtime\")\n"
            "        return fallback\n",
            select=["R004"],
        )
        assert report.findings == []

    def test_pragma_suppresses(self, tmp_path):
        report = lint_source(
            tmp_path,
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except KeyError:\n"
            "        raise ValueError(\"bad\")  # reprolint: disable=R004 - fixture\n",
            select=["R004"],
        )
        assert report.findings == []
        assert report.suppressed == 1


# ----------------------------------------------------------------------
# R005 — pickle boundary
# ----------------------------------------------------------------------
class TestPickleBoundary:
    def test_pickle_load_outside_transport_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import pickle\n"
            "def restore(path):\n"
            "    with open(path, \"rb\") as fh:\n"
            "        return pickle.load(fh)\n",
            select=["R005"],
        )
        assert rule_ids(report) == ["R005"]

    def test_from_import_flagged(self, tmp_path):
        report = lint_source(
            tmp_path, "from pickle import loads\n", select=["R005"]
        )
        assert rule_ids(report) == ["R005"]

    def test_transport_module_exempt(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import pickle\n"
            "def decode(data):\n"
            "    return pickle.loads(data)\n",
            name="cluster/transport.py",
            select=["R005"],
        )
        assert report.findings == []

    def test_pickle_dump_is_fine(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import pickle\n"
            "def save(obj, fh):\n"
            "    pickle.dump(obj, fh)\n",
            select=["R005"],
        )
        assert report.findings == []

    def test_pragma_suppresses(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import pickle\n"
            "def restore(fh):\n"
            "    return pickle.load(fh)  # reprolint: disable=R005 - trusted fixture\n",
            select=["R005"],
        )
        assert report.findings == []
        assert report.suppressed == 1


# ----------------------------------------------------------------------
# R006 — __all__ parity
# ----------------------------------------------------------------------
class TestAllParity:
    def test_listed_but_unbound_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            "def real():\n    pass\n\n__all__ = [\"real\", \"ghost\"]\n",
            select=["R006"],
        )
        assert rule_ids(report) == ["R006"]
        assert "'ghost'" in report.findings[0].message

    def test_public_def_missing_from_all_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            "def listed():\n    pass\n\n"
            "def forgotten():\n    pass\n\n"
            "__all__ = [\"listed\"]\n",
            select=["R006"],
        )
        assert rule_ids(report) == ["R006"]
        assert "forgotten" in report.findings[0].message

    def test_private_defs_and_imports_ignored(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import os\n"
            "from pathlib import Path\n\n"
            "def _helper():\n    pass\n\n"
            "def public():\n    pass\n\n"
            "__all__ = [\"public\"]\n",
            select=["R006"],
        )
        assert report.findings == []

    def test_duplicate_entry_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            "def f():\n    pass\n\n__all__ = [\"f\", \"f\"]\n",
            select=["R006"],
        )
        assert rule_ids(report) == ["R006"]
        assert "twice" in report.findings[0].message

    def test_module_without_all_out_of_scope(self, tmp_path):
        report = lint_source(
            tmp_path, "def anything():\n    pass\n", select=["R006"]
        )
        assert report.findings == []

    def test_augmented_all_merges(self, tmp_path):
        report = lint_source(
            tmp_path,
            "def a():\n    pass\n\ndef b():\n    pass\n\n"
            "__all__ = [\"a\"]\n__all__ += [\"b\"]\n",
            select=["R006"],
        )
        assert report.findings == []

    def test_pragma_suppresses(self, tmp_path):
        report = lint_source(
            tmp_path,
            "def real():\n    pass\n\n"
            "__all__ = [\"real\", \"ghost\"]  # reprolint: disable=R006 - fixture\n",
            select=["R006"],
        )
        assert report.findings == []
        assert report.suppressed == 1


# ----------------------------------------------------------------------
# R007 — broad except
# ----------------------------------------------------------------------
class TestBroadExcept:
    def test_except_exception_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            "try:\n    work()\nexcept Exception:\n    pass\n",
            select=["R007"],
        )
        assert rule_ids(report) == ["R007"]

    def test_tuple_with_base_exception_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            "try:\n    work()\nexcept (ValueError, BaseException):\n    pass\n",
            select=["R007"],
        )
        assert rule_ids(report) == ["R007"]

    def test_suppress_exception_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import contextlib\n"
            "with contextlib.suppress(Exception):\n"
            "    work()\n",
            select=["R007"],
        )
        assert rule_ids(report) == ["R007"]

    def test_narrow_except_clean(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import contextlib\n"
            "try:\n    work()\nexcept (OSError, ValueError):\n    pass\n"
            "with contextlib.suppress(KeyError):\n"
            "    work()\n",
            select=["R007"],
        )
        assert report.findings == []

    def test_pragma_suppresses(self, tmp_path):
        report = lint_source(
            tmp_path,
            "try:\n"
            "    work()\n"
            "except Exception:  # reprolint: disable=R007 - fixture teardown\n"
            "    pass\n",
            select=["R007"],
        )
        assert report.findings == []
        assert report.suppressed == 1


# ----------------------------------------------------------------------
# R008/R009/R010 — concurrency sanitizer (static half)
# ----------------------------------------------------------------------
# the seeded inversion fixture: two locks, two methods, opposite nesting
# orders — the canonical deadlock the sanitizer exists to catch
INVERTED_CLASS = """\
import threading


class Inverted:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def forward(self):
        with self._a:
            with self._b:
                return 1

    def backward(self):
        with self._b:
            with self._a:
                return 2
"""


class TestLockOrder:
    def test_seeded_inversion_flagged_both_sites(self, tmp_path):
        report = lint_source(tmp_path, INVERTED_CLASS, select=["R008"])
        assert rule_ids(report) == ["R008", "R008"]
        # each finding names the full cycle
        for finding in report.findings:
            assert "Inverted._a" in finding.message
            assert "Inverted._b" in finding.message

    def test_consistent_order_clean(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import threading\n"
            "class Ordered:\n"
            "    def __init__(self):\n"
            "        self._a = threading.Lock()\n"
            "        self._b = threading.Lock()\n"
            "    def one(self):\n"
            "        with self._a:\n"
            "            with self._b:\n"
            "                return 1\n"
            "    def two(self):\n"
            "        with self._a:\n"
            "            with self._b:\n"
            "                return 2\n",
            select=["R008"],
        )
        assert report.findings == []

    def test_inversion_through_helper_call_flagged(self, tmp_path):
        """The nesting hides behind an intra-class call: still caught."""
        report = lint_source(
            tmp_path,
            "import threading\n"
            "class Transitive:\n"
            "    def __init__(self):\n"
            "        self._a = threading.Lock()\n"
            "        self._b = threading.Lock()\n"
            "    def _grab_b(self):\n"
            "        with self._b:\n"
            "            return 1\n"
            "    def forward(self):\n"
            "        with self._a:\n"
            "            return self._grab_b()\n"
            "    def backward(self):\n"
            "        with self._b:\n"
            "            with self._a:\n"
            "                return 2\n",
            select=["R008"],
        )
        assert "R008" in rule_ids(report)

    def test_cross_class_edge_in_model(self, tmp_path):
        """``self.worker.run()`` pulls the other class's lock into the
        held set via the ctor-assigned attribute type."""
        from repro.analysis.concurrency import build_lock_model

        path = tmp_path / "cross.py"
        path.write_text(
            "import threading\n"
            "class Worker:\n"
            "    def __init__(self):\n"
            "        self._w = threading.Lock()\n"
            "    def run(self):\n"
            "        with self._w:\n"
            "            return 1\n"
            "class Owner:\n"
            "    def __init__(self):\n"
            "        self._o = threading.Lock()\n"
            "        self.worker = Worker()\n"
            "    def go(self):\n"
            "        with self._o:\n"
            "            return self.worker.run()\n",
            encoding="utf-8",
        )
        project, errors = load_project([str(path)])
        assert errors == []
        model = build_lock_model(project)
        assert ("Owner._o", "Worker._w") in model.edge_keys

    def test_pragma_suppresses(self, tmp_path):
        source = INVERTED_CLASS.replace(
            "        with self._b:\n            with self._a:",
            "        with self._b:\n"
            "            with self._a:"
            "  # reprolint: disable=R008 - toy fixture",
        )
        report = lint_source(tmp_path, source, select=["R008"])
        # suppressing one site of the cycle leaves the other finding
        assert len(report.findings) <= 1
        assert report.suppressed >= 1


class TestBlockingUnderLock:
    def test_sleep_under_lock_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import threading\n"
            "import time\n"
            "class Sleepy:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def nap(self):\n"
            "        with self._lock:\n"
            "            time.sleep(1.0)\n",
            select=["R009"],
        )
        assert rule_ids(report) == ["R009"]

    def test_socket_recv_under_lock_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import threading\n"
            "class Proxy:\n"
            "    def __init__(self, sock):\n"
            "        self._lock = threading.Lock()\n"
            "        self._sock = sock\n"
            "    def fetch(self):\n"
            "        with self._lock:\n"
            "            return self._sock.recv(4096)\n",
            select=["R009"],
        )
        assert rule_ids(report) == ["R009"]

    def test_queue_get_under_lock_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import queue\n"
            "import threading\n"
            "class Pump:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._queue = queue.Queue()\n"
            "    def drain(self):\n"
            "        with self._lock:\n"
            "            return self._queue.get()\n",
            select=["R009"],
        )
        assert rule_ids(report) == ["R009"]

    def test_nonblocking_queue_get_clean(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import queue\n"
            "import threading\n"
            "class Pump:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._queue = queue.Queue()\n"
            "    def poll(self):\n"
            "        with self._lock:\n"
            "            return self._queue.get_nowait()\n",
            select=["R009"],
        )
        assert report.findings == []

    def test_wait_on_held_condition_exempt(self, tmp_path):
        """``cond.wait()`` releases the lock it holds — the one blocking
        call that is *correct* under its own lock."""
        report = lint_source(
            tmp_path,
            "import threading\n"
            "class Waiter:\n"
            "    def __init__(self):\n"
            "        self._cond = threading.Condition()\n"
            "    def park(self):\n"
            "        with self._cond:\n"
            "            self._cond.wait()\n",
            select=["R009"],
        )
        assert report.findings == []

    def test_thread_join_under_lock_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import threading\n"
            "class Stopper:\n"
            "    def __init__(self, worker):\n"
            "        self._lock = threading.Lock()\n"
            "        self._worker = worker\n"
            "    def stop(self):\n"
            "        with self._lock:\n"
            "            self._worker.join()\n",
            select=["R009"],
        )
        assert rule_ids(report) == ["R009"]

    def test_semaphore_held_set_exempt(self, tmp_path):
        """Semaphores are admission throttles, not mutexes — blocking
        while only a slot is held stalls nobody's critical section."""
        report = lint_source(
            tmp_path,
            "import threading\n"
            "import time\n"
            "class Throttle:\n"
            "    def __init__(self):\n"
            "        self._slots = threading.BoundedSemaphore(4)\n"
            "    def work(self):\n"
            "        with self._slots:\n"
            "            time.sleep(0.1)\n",
            select=["R009"],
        )
        assert report.findings == []

    def test_pragma_suppresses(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import threading\n"
            "import time\n"
            "class Sleepy:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def nap(self):\n"
            "        with self._lock:\n"
            "            time.sleep(1.0)"
            "  # reprolint: disable=R009 - deliberate backoff fixture\n",
            select=["R009"],
        )
        assert report.findings == []
        assert report.suppressed == 1


class TestLockLeak:
    def test_bare_acquire_without_finally_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import threading\n"
            "class Leaky:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def grab(self):\n"
            "        self._lock.acquire()\n"
            "        return work()\n",
            select=["R010"],
        )
        assert rule_ids(report) == ["R010"]

    def test_try_finally_release_clean(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import threading\n"
            "class Careful:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def grab(self):\n"
            "        self._lock.acquire()\n"
            "        try:\n"
            "            return work()\n"
            "        finally:\n"
            "            self._lock.release()\n",
            select=["R010"],
        )
        assert report.findings == []

    def test_with_statement_clean(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import threading\n"
            "class Scoped:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def grab(self):\n"
            "        with self._lock:\n"
            "            return work()\n",
            select=["R010"],
        )
        assert report.findings == []

    def test_pragma_suppresses(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import threading\n"
            "class Leaky:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def grab(self):\n"
            "        self._lock.acquire()"
            "  # reprolint: disable=R010 - released by the consumer thread\n"
            "        return work()\n",
            select=["R010"],
        )
        assert report.findings == []
        assert report.suppressed == 1


class TestServeStaticLockModel:
    """Regression: pin the serving path's static lock-order graph."""

    @pytest.fixture(scope="class")
    def serve_model(self):
        from repro.analysis.concurrency import build_lock_model

        project, errors = load_project([str(REPO_ROOT / "src" / "repro" / "serve")])
        assert errors == []
        return build_lock_model(project)

    def test_conn_lock_inflight_cond_never_nested(self, serve_model):
        """Shutdown takes ``_inflight_cond`` then ``_conn_lock``
        *sequentially* — nesting them in either order would be a new
        ordering constraint the rest of the server never agreed to."""
        edges = serve_model.edge_keys
        assert ("EstimationServer._inflight_cond", "EstimationServer._conn_lock") not in edges
        assert ("EstimationServer._conn_lock", "EstimationServer._inflight_cond") not in edges

    def test_static_model_covers_observed_runtime_edges(self, serve_model):
        """The two edges the REPRO_LOCKDEP=1 suite actually observes."""
        edges = serve_model.edge_keys
        assert ("EstimationServer._estimate_slots", "EstimationServer._read_serialiser") in edges
        assert ("EstimationServer._estimate_slots", "GenerationManager._cond") in edges

    def test_serve_graph_is_acyclic(self, serve_model):
        assert serve_model.find_cycles() == []


# ----------------------------------------------------------------------
# engine behaviour
# ----------------------------------------------------------------------
class TestEngine:
    def test_file_scope_pragma(self, tmp_path):
        source = (
            "# reprolint: disable-file=R007 - fixture module\n"
            "try:\n    work()\nexcept Exception:\n    pass\n"
            "try:\n    work()\nexcept BaseException:\n    pass\n"
        )
        report = lint_source(tmp_path, source, select=["R007"])
        assert report.findings == []
        assert report.suppressed == 2

    def test_multi_rule_pragma(self, tmp_path):
        source = (
            "import pickle, random\n"
            "import random\n"
            "def f(fh):\n"
            "    return pickle.load(fh), random.random()  # reprolint: disable=R001,R005 - fixture\n"
        )
        report = lint_source(tmp_path, source)
        assert all(f.rule not in ("R001", "R005") for f in report.findings)
        assert report.suppressed == 2

    def test_parse_error_reported_not_raised(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n", encoding="utf-8")
        report = lint_paths([str(path)])
        assert report.findings == []
        assert len(report.parse_errors) == 1
        assert report.parse_errors[0].rule == "PARSE"
        assert report.exit_code == 1

    def test_unknown_rule_id_raises(self):
        with pytest.raises(ValueError, match="R999"):
            resolve_rules(default_rules(), select=["R999"])
        with pytest.raises(ValueError, match="R999"):
            resolve_rules(default_rules(), disable=["R999"])

    def test_select_and_disable_filter(self):
        rules = default_rules()
        assert [r.id for r in resolve_rules(rules, select=["R004"])] == ["R004"]
        remaining = resolve_rules(rules, disable=["R004", "R007"])
        assert "R004" not in [r.id for r in remaining]
        assert len(remaining) == len(rules) - 2

    def test_finding_render_anchors(self):
        finding = Finding("R001", "message", "src/mod.py", 12, 4)
        assert finding.render() == "src/mod.py:12:4: R001 message"

    def test_findings_sorted_by_location(self, tmp_path):
        source = (
            "import random\n"
            "try:\n"
            "    random.random()\n"
            "except Exception:\n"
            "    pass\n"
        )
        report = lint_source(tmp_path, source)
        keys = [f.sort_key for f in report.findings]
        assert keys == sorted(keys)

    def test_source_module_pragma_parsing(self):
        module = SourceModule(
            "x.py",
            "a = 1  # reprolint: disable=R001,R002 - reason text\n"
            "# reprolint: disable-file=R007\n",
        )
        assert module.line_pragmas[1] == {"R001", "R002"}
        assert module.file_pragmas == {"R007"}

    def test_load_project_skips_unreadable_dirs(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        project, errors = load_project([str(tmp_path)])
        assert len(project) == 1
        assert errors == []


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("x = 1\n", encoding="utf-8")
        assert run_lint([str(path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one_text(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text("from random import shuffle\n", encoding="utf-8")
        assert run_lint([str(path)]) == 1
        out = capsys.readouterr().out
        assert "R001" in out and str(path) in out

    def test_json_format_and_output_file(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text("from random import shuffle\n", encoding="utf-8")
        out_file = tmp_path / "report.json"
        code = run_lint(
            [str(path), "--format", "json", "--output", str(out_file)]
        )
        assert code == 1
        payload = json.loads(out_file.read_text(encoding="utf-8"))
        assert payload["version"] == 1
        assert payload["files_scanned"] == 1
        assert [f["rule"] for f in payload["findings"]] == ["R001"]
        # stdout carries the same document
        assert json.loads(capsys.readouterr().out) == payload

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("x = 1\n", encoding="utf-8")
        assert run_lint([str(path), "--select", "R999"]) == 2
        assert "unknown rule" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert run_lint(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in default_rules():
            assert rule.id in out
        assert render_rule_table() in out

    def test_disable_filters_findings(self, tmp_path):
        path = tmp_path / "bad.py"
        path.write_text("from random import shuffle\n", encoding="utf-8")
        assert run_lint([str(path), "--disable", "R001"]) == 0

    def test_comma_separated_rule_lists(self, tmp_path):
        # same grammar as the pragma: disable=R001,R004
        path = tmp_path / "bad.py"
        path.write_text(
            "from random import shuffle\n"
            "try:\n"
            "    shuffle([])\n"
            "except ValueError:\n"
            "    raise RuntimeError('x')\n",
            encoding="utf-8",
        )
        assert run_lint([str(path)]) == 1
        assert run_lint([str(path), "--disable", "R001,R004"]) == 0
        assert run_lint([str(path), "--select", "R001,R004"]) == 1

    def test_main_cli_exposes_lint(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "clean.py"
        path.write_text("x = 1\n", encoding="utf-8")
        assert main(["lint", str(path)]) == 0


# ----------------------------------------------------------------------
# the gate CI runs: the shipped tree lints clean
# ----------------------------------------------------------------------
class TestRepositoryClean:
    def test_src_tree_lints_clean(self):
        report = lint_paths([str(REPO_ROOT / "src")])
        rendered = report.render_text()
        assert report.parse_errors == [], rendered
        assert report.findings == [], rendered
        assert report.exit_code == 0
        assert report.files_scanned > 50

    def test_every_default_rule_ran(self):
        report = lint_paths([str(REPO_ROOT / "src")])
        assert report.rules_run == [rule.id for rule in default_rules()]
