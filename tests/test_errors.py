"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    DimensionMismatchError,
    EmptyCollectionError,
    EstimationError,
    IndexNotBuiltError,
    InsufficientSampleError,
    ReproError,
    UnsupportedOperationError,
    ValidationError,
)


class TestHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for error_type in (
            ValidationError,
            EmptyCollectionError,
            DimensionMismatchError,
            EstimationError,
            InsufficientSampleError,
            IndexNotBuiltError,
            UnsupportedOperationError,
        ):
            assert issubclass(error_type, ReproError)

    def test_validation_error_is_value_error(self):
        assert issubclass(ValidationError, ValueError)

    def test_empty_collection_is_validation_error(self):
        assert issubclass(EmptyCollectionError, ValidationError)

    def test_dimension_mismatch_is_validation_error(self):
        assert issubclass(DimensionMismatchError, ValidationError)

    def test_insufficient_sample_is_estimation_error(self):
        assert issubclass(InsufficientSampleError, EstimationError)

    def test_errors_carry_messages(self):
        with pytest.raises(ValidationError, match="broken"):
            raise ValidationError("broken input")

    def test_catching_base_class_catches_subclasses(self):
        with pytest.raises(ReproError):
            raise InsufficientSampleError("no pairs")
