"""Tests for the bifocal equi-join baseline."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.sampling import bifocal_join_size_estimate
from repro.sampling.bifocal import exact_equi_join_size


class TestExactEquiJoin:
    def test_simple_join(self):
        assert exact_equi_join_size([1, 1, 2], [1, 2, 2]) == 2 * 1 + 1 * 2

    def test_disjoint_keys(self):
        assert exact_equi_join_size([1, 2], [3, 4]) == 0

    def test_self_join_of_duplicates(self):
        assert exact_equi_join_size([5] * 4, [5] * 3) == 12


class TestBifocalEstimate:
    def test_skewed_join_estimate_within_factor(self):
        rng = np.random.default_rng(0)
        # one very frequent value (skew) plus uniform noise
        left = np.concatenate([np.full(2000, 7), rng.integers(100, 5000, size=8000)])
        right = np.concatenate([np.full(1500, 7), rng.integers(100, 5000, size=8500)])
        true_size = exact_equi_join_size(left.tolist(), right.tolist())
        estimates = [
            bifocal_join_size_estimate(left, right, sample_size=1500, random_state=seed)[0]
            for seed in range(10)
        ]
        assert np.mean(estimates) == pytest.approx(true_size, rel=0.5)

    def test_uniform_join_estimate(self):
        rng = np.random.default_rng(3)
        left = rng.integers(0, 200, size=4000)
        right = rng.integers(0, 200, size=4000)
        true_size = exact_equi_join_size(left.tolist(), right.tolist())
        estimate, details = bifocal_join_size_estimate(
            left, right, sample_size=1200, random_state=1
        )
        assert estimate == pytest.approx(true_size, rel=0.6)
        assert details["sample_size"] == 1200

    def test_details_breakdown_sums_to_estimate(self):
        rng = np.random.default_rng(5)
        left = rng.integers(0, 50, size=2000)
        right = rng.integers(0, 50, size=2000)
        estimate, details = bifocal_join_size_estimate(left, right, random_state=2)
        parts = (
            details["dense_dense"]
            + details["dense_sparse"]
            + details["sparse_dense"]
            + details["sparse_sparse"]
        )
        assert estimate == pytest.approx(parts)

    def test_empty_relation_raises(self):
        with pytest.raises(ValidationError):
            bifocal_join_size_estimate([], [1, 2, 3])

    def test_deterministic_given_seed(self):
        left = list(range(100)) * 3
        right = list(range(50)) * 4
        a = bifocal_join_size_estimate(left, right, random_state=11)[0]
        b = bifocal_join_size_estimate(left, right, random_state=11)[0]
        assert a == b
