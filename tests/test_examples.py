"""Sanity checks on the example scripts.

The examples are exercised end-to-end manually (they print to stdout and
use collection sizes tuned for humans, not CI), but the test suite still
guards against bit-rot: every example must parse, carry a module
docstring explaining its scenario, define a ``main()`` entry point, and
only import names that the public API actually exposes.
"""

import ast
from pathlib import Path

import pytest

import repro

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
class TestExampleScripts:
    def _parse(self, path: Path) -> ast.Module:
        return ast.parse(path.read_text(encoding="utf-8"), filename=str(path))

    def test_parses_and_has_docstring(self, path):
        tree = self._parse(path)
        assert ast.get_docstring(tree), f"{path.name} is missing a module docstring"

    def test_defines_main_and_guard(self, path):
        tree = self._parse(path)
        function_names = {
            node.name for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)
        }
        assert "main" in function_names
        assert "__main__" in path.read_text(encoding="utf-8")

    def test_top_level_repro_imports_exist(self, path):
        tree = self._parse(path)
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "repro":
                for alias in node.names:
                    assert hasattr(repro, alias.name), (
                        f"{path.name} imports repro.{alias.name}, which is not exported"
                    )


def test_expected_examples_present():
    names = {path.name for path in EXAMPLE_FILES}
    assert {"quickstart.py", "query_optimizer.py", "near_duplicate_tuning.py",
            "general_join_two_collections.py"}.issubset(names)
    assert len(names) >= 3
