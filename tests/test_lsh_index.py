"""Tests for the multi-table LSH index and virtual-bucket view."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.lsh import LSHIndex, MinHashFamily, SignRandomProjectionFamily
from repro.lsh.index import build_index, resolve_family
from repro.vectors import VectorCollection


class TestResolveFamily:
    def test_cosine_name(self):
        assert resolve_family("cosine") is SignRandomProjectionFamily
        assert resolve_family("angular") is SignRandomProjectionFamily

    def test_jaccard_name(self):
        assert resolve_family("jaccard") is MinHashFamily

    def test_class_passthrough(self):
        assert resolve_family(MinHashFamily) is MinHashFamily

    def test_unknown_name(self):
        with pytest.raises(ValidationError) as excinfo:
            resolve_family("hamming-nope")
        assert "hamming-nope" in str(excinfo.value)
        assert "cosine" in str(excinfo.value)  # the message lists the options

    def test_name_is_case_insensitive(self):
        assert resolve_family("COSINE") is SignRandomProjectionFamily
        assert resolve_family("Jaccard") is MinHashFamily

    def test_non_family_class(self):
        with pytest.raises(ValidationError):
            resolve_family(dict)

    def test_family_instance_rejected(self):
        # an *instance* is not accepted, only names or classes
        with pytest.raises(ValidationError):
            resolve_family(MinHashFamily(4, random_state=0))

    def test_none_and_numbers_rejected(self):
        with pytest.raises(ValidationError):
            resolve_family(None)
        with pytest.raises(ValidationError):
            resolve_family(3.14)


class TestIndexConstruction:
    def test_number_of_tables(self, small_index):
        assert len(small_index) == 3
        assert len(small_index.tables) == 3

    def test_tables_use_independent_hash_functions(self, small_index):
        signatures = [table.signatures for table in small_index.tables]
        assert not np.array_equal(signatures[0], signatures[1])

    def test_primary_table(self, small_index):
        assert small_index.primary_table is small_index.tables[0]
        assert small_index[0] is small_index.tables[0]

    def test_iteration(self, small_index):
        assert sum(1 for _ in small_index) == 3

    def test_invalid_num_tables(self, small_collection):
        with pytest.raises(ValidationError):
            LSHIndex(small_collection, num_tables=0)

    def test_deterministic_given_seed(self, small_collection):
        a = LSHIndex(small_collection, num_hashes=6, num_tables=2, random_state=4)
        b = LSHIndex(small_collection, num_hashes=6, num_tables=2, random_state=4)
        np.testing.assert_array_equal(a.tables[1].signatures, b.tables[1].signatures)

    def test_build_index_helper(self, small_collection):
        index = build_index(small_collection, num_hashes=5, num_tables=2, random_state=0)
        assert len(index) == 2

    def test_jaccard_family_index(self, binary_collection):
        index = LSHIndex(binary_collection, num_hashes=8, family="jaccard", random_state=0)
        assert index.primary_table.num_collision_pairs >= 1  # identical records collide

    def test_memory_estimate_sums_tables(self, small_index):
        total = small_index.memory_estimate_bytes()
        assert total == sum(t.memory_estimate_bytes() for t in small_index.tables)


class TestVirtualBuckets:
    def test_same_bucket_any_consistent_with_tables(self, small_index, rng):
        left = rng.integers(0, small_index.collection.size, size=100)
        right = rng.integers(0, small_index.collection.size, size=100)
        vectorised = small_index.same_bucket_any_many(left, right)
        scalar = [small_index.same_bucket_any(int(i), int(j)) for i, j in zip(left, right)]
        assert vectorised.tolist() == scalar

    def test_virtual_pairs_are_deduplicated_and_ordered(self, small_index):
        left, right = small_index.virtual_collision_pairs()
        assert np.all(left < right)
        keys = set(zip(left.tolist(), right.tolist()))
        assert len(keys) == left.size

    def test_virtual_pairs_superset_of_single_table(self, small_index):
        left, right = small_index.virtual_collision_pairs()
        virtual = set(zip(left.tolist(), right.tolist()))
        table_pairs = {
            (min(u, v), max(u, v))
            for u, v in small_index.primary_table.iter_collision_pairs()
        }
        assert table_pairs.issubset(virtual)

    def test_every_virtual_pair_collides_somewhere(self, small_index):
        left, right = small_index.virtual_collision_pairs()
        for u, v in zip(left[:200], right[:200]):
            assert small_index.same_bucket_any(int(u), int(v))

    def test_max_pairs_guard(self):
        # k=1 groups nearly everything together: enumeration must refuse.
        collection = VectorCollection.from_dense(np.random.default_rng(0).random((200, 4)))
        index = LSHIndex(collection, num_hashes=1, num_tables=2, random_state=1)
        with pytest.raises(ValidationError):
            index.virtual_collision_pairs(max_pairs=10)
