"""Tests for the Estimate result type and the estimator base class."""

import pytest

from repro.core import Estimate, SimilarityJoinSizeEstimator
from repro.errors import ValidationError


class ConstantEstimator(SimilarityJoinSizeEstimator):
    """Test double returning a fixed raw value."""

    name = "constant"

    def __init__(self, raw_value: float, total_pairs: int = 100):
        self._raw_value = raw_value
        self._total_pairs = total_pairs

    @property
    def total_pairs(self) -> int:
        return self._total_pairs

    def _estimate(self, threshold, *, random_state=None):
        return Estimate(value=self._raw_value, estimator=self.name, threshold=threshold)


class TestEstimate:
    def test_float_conversion(self):
        assert float(Estimate(value=12.5, estimator="x", threshold=0.5)) == 12.5

    def test_relative_error_overestimate(self):
        estimate = Estimate(value=150.0, estimator="x", threshold=0.5)
        assert estimate.relative_error(100.0) == pytest.approx(0.5)

    def test_relative_error_underestimate(self):
        estimate = Estimate(value=50.0, estimator="x", threshold=0.5)
        assert estimate.relative_error(100.0) == pytest.approx(-0.5)

    def test_relative_error_empty_join(self):
        assert Estimate(value=0.0, estimator="x", threshold=0.5).relative_error(0.0) == 0.0
        assert Estimate(value=5.0, estimator="x", threshold=0.5).relative_error(0.0) == float("inf")

    def test_relative_error_negative_true_size(self):
        with pytest.raises(ValidationError):
            Estimate(value=1.0, estimator="x", threshold=0.5).relative_error(-1.0)

    def test_details_default_empty(self):
        assert Estimate(value=1.0, estimator="x", threshold=0.5).details == {}


class TestEstimatorBase:
    def test_estimate_wraps_and_clamps_upper(self):
        estimator = ConstantEstimator(raw_value=1e9, total_pairs=500)
        assert estimator.estimate(0.5).value == 500.0

    def test_estimate_clamps_negative(self):
        estimator = ConstantEstimator(raw_value=-3.0)
        assert estimator.estimate(0.5).value == 0.0

    def test_estimate_passes_threshold_through(self):
        result = ConstantEstimator(10.0).estimate(0.75)
        assert result.threshold == 0.75
        assert result.estimator == "constant"

    @pytest.mark.parametrize("threshold", [0.0, -0.1, 1.0001, 2.0])
    def test_threshold_validation(self, threshold):
        with pytest.raises(ValidationError):
            ConstantEstimator(1.0).estimate(threshold)

    def test_threshold_one_is_allowed(self):
        assert ConstantEstimator(1.0).estimate(1.0).value == 1.0

    def test_estimate_forwards_options_to_subclass(self):
        """The base clamp is the single one; subclass options pass through it."""

        class ModalEstimator(ConstantEstimator):
            def _estimate(self, threshold, *, random_state=None, mode="auto"):
                value = self._raw_value if mode == "auto" else -1.0
                return Estimate(value=value, estimator=self.name, threshold=threshold)

        estimator = ModalEstimator(raw_value=7.0)
        assert estimator.estimate(0.5, mode="auto").value == 7.0
        # the forwarded-mode result is clamped by the base class too
        assert estimator.estimate(0.5, mode="other").value == 0.0

    def test_streaming_estimators_share_the_base_clamp(self):
        """The clamp lives only in the base class (no duplicated copies)."""
        import inspect

        from repro.shard.merge import ShardedStreamingEstimator
        from repro.streaming.estimator import StreamingEstimator

        for cls in (StreamingEstimator, ShardedStreamingEstimator):
            source = inspect.getsource(cls.estimate)
            assert "total_pairs" not in source, f"{cls.__name__} re-clamps locally"
            assert "super().estimate" in source
