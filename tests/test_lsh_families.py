"""Tests for the LSH hash-function families.

The key property under test is Definition 3: the empirical collision rate
of a family must track its theoretical collision-probability curve for
pairs of known similarity.
"""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.lsh import MinHashFamily, PStableL2Family, SignRandomProjectionFamily
from repro.vectors import VectorCollection, jaccard_similarity
from repro.vectors.similarity import cosine_similarity


def _pair_collection(u, v):
    return VectorCollection.from_dense([u, v])


class TestSignRandomProjection:
    def test_signature_shape_and_values(self, small_collection):
        family = SignRandomProjectionFamily(16, random_state=0)
        signatures = family.hash_collection(small_collection)
        assert signatures.shape == (small_collection.size, 16)
        assert set(np.unique(signatures)).issubset({0, 1})

    def test_identical_vectors_always_collide(self):
        collection = _pair_collection([1.0, 2.0, 3.0], [2.0, 4.0, 6.0])
        family = SignRandomProjectionFamily(64, random_state=1)
        signatures = family.hash_collection(collection)
        np.testing.assert_array_equal(signatures[0], signatures[1])

    def test_collision_probability_formula(self):
        family = SignRandomProjectionFamily(8, random_state=0)
        assert family.collision_probability(1.0) == pytest.approx(1.0)
        assert family.collision_probability(0.0) == pytest.approx(0.5)
        assert family.collision_probability(-1.0) == pytest.approx(0.0)

    def test_empirical_collision_rate_matches_theory(self):
        rng = np.random.default_rng(7)
        dimension = 30
        base = rng.standard_normal(dimension)
        other = base + 0.6 * rng.standard_normal(dimension)
        collection = _pair_collection(base.tolist(), other.tolist())
        similarity = cosine_similarity(base, other)
        family = SignRandomProjectionFamily(4000, random_state=3)
        signatures = family.hash_collection(collection)
        empirical = float(np.mean(signatures[0] == signatures[1]))
        expected = float(family.collision_probability(similarity))
        assert empirical == pytest.approx(expected, abs=0.03)

    def test_bucket_collision_probability_is_power(self):
        family = SignRandomProjectionFamily(10, random_state=0)
        single = family.collision_probability(0.8)
        assert family.bucket_collision_probability(0.8) == pytest.approx(single**10)

    def test_dimension_mismatch_rejected(self, small_collection):
        family = SignRandomProjectionFamily(4, random_state=0)
        family.hash_collection(small_collection)
        other = VectorCollection.from_dense([[1.0, 2.0]])
        with pytest.raises(ValidationError):
            family.hash_collection(other)

    def test_deterministic_given_seed(self, small_collection):
        a = SignRandomProjectionFamily(8, random_state=5).hash_collection(small_collection)
        b = SignRandomProjectionFamily(8, random_state=5).hash_collection(small_collection)
        np.testing.assert_array_equal(a, b)

    def test_invalid_k(self):
        with pytest.raises(ValidationError):
            SignRandomProjectionFamily(0)


class TestMinHash:
    def test_signature_shape(self, binary_collection):
        family = MinHashFamily(10, random_state=0)
        signatures = family.hash_collection(binary_collection)
        assert signatures.shape == (binary_collection.size, 10)

    def test_identical_sets_identical_signatures(self, binary_collection):
        family = MinHashFamily(24, random_state=2)
        signatures = family.hash_collection(binary_collection)
        np.testing.assert_array_equal(signatures[0], signatures[1])

    def test_collision_probability_equals_jaccard(self):
        family = MinHashFamily(4, random_state=0)
        assert family.collision_probability(0.37) == pytest.approx(0.37)
        assert family.collision_probability(1.3) == pytest.approx(1.0)

    def test_empirical_collision_rate_tracks_jaccard(self):
        set_a = set(range(0, 40))
        set_b = set(range(20, 60))
        collection = VectorCollection.from_token_sets([set_a, set_b], dimension=60)
        family = MinHashFamily(3000, random_state=11)
        signatures = family.hash_collection(collection)
        empirical = float(np.mean(signatures[0] == signatures[1]))
        expected = jaccard_similarity(set_a, set_b)
        # linear permutation-hashes are only approximately min-wise
        # independent, so allow a few percent of bias on top of sampling noise
        assert empirical == pytest.approx(expected, abs=0.07)

    def test_empty_support_gets_sentinel_signature(self):
        collection = VectorCollection.from_dicts([{0: 0.0}, {1: 1.0}], dimension=2)
        family = MinHashFamily(5, random_state=0)
        signatures = family.hash_collection(collection)
        assert signatures[0].min() > 0  # sentinel, not a real hash of tokens


class TestPStable:
    def test_signature_shape(self, small_collection):
        family = PStableL2Family(6, bucket_width=4.0, random_state=0)
        signatures = family.hash_collection(small_collection)
        assert signatures.shape == (small_collection.size, 6)

    def test_identical_vectors_collide(self):
        collection = _pair_collection([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        family = PStableL2Family(32, random_state=0)
        signatures = family.hash_collection(collection)
        np.testing.assert_array_equal(signatures[0], signatures[1])

    def test_collision_probability_decreases_with_distance(self):
        family = PStableL2Family(4, bucket_width=4.0, random_state=0)
        probabilities = family.collision_probability(np.array([0.0, 1.0, 4.0, 16.0]))
        assert probabilities[0] == pytest.approx(1.0)
        assert np.all(np.diff(probabilities) < 0)

    def test_invalid_bucket_width(self):
        with pytest.raises(ValidationError):
            PStableL2Family(4, bucket_width=0.0)


class TestHashMatrixCanonicalisation:
    def test_explicit_zeros_do_not_change_signatures_or_input(self):
        """hash_matrix must hash the logical vector, not the storage, and
        must never mutate the caller's matrix."""
        from scipy import sparse

        from repro.lsh.families import MinHashFamily

        data = np.array([1.0, 0.0, 2.0])  # explicit stored zero at column 2
        stored = sparse.csr_matrix((data, np.array([0, 2, 3]), [0, 3]), shape=(1, 6))
        canonical = stored.copy()
        canonical.eliminate_zeros()
        family = MinHashFamily(8, random_state=0)
        np.testing.assert_array_equal(
            family.hash_matrix(stored), family.hash_matrix(canonical)
        )
        assert stored.nnz == 3  # caller's matrix untouched


class TestMinHashBlockedArithmetic:
    """The vectorised blocked-Mersenne path must equal exact arithmetic."""

    def test_matches_object_dtype_reference(self):
        from scipy import sparse

        from repro.lsh.families import _MERSENNE_PRIME

        rng = np.random.default_rng(11)
        for k, (rows, dimension, density) in zip(
            (4, 16, 33), ((40, 25, 0.3), (120, 800, 0.02), (8, 5, 0.6))
        ):
            matrix = sparse.random(rows, dimension, density=density,
                                   random_state=rng, format="csr")
            matrix.data[:] = 1.0
            family = MinHashFamily(k, random_state=int(k))
            family.ensure_initialised(dimension)
            fast = family._hash_matrix(matrix)
            a = family._coefficients_a.astype(object)
            b = family._coefficients_b.astype(object)
            expected = np.full((rows, k), _MERSENNE_PRIME, dtype=np.int64)
            for row in range(rows):
                support = matrix.indices[matrix.indptr[row]:matrix.indptr[row + 1]]
                if support.size == 0:
                    continue
                hashed = (support.astype(object)[:, None] * a[None, :]
                          + b[None, :]) % _MERSENNE_PRIME
                expected[row] = np.min(hashed.astype(np.int64), axis=0)
            np.testing.assert_array_equal(fast, expected)

    def test_blocking_boundary_independence(self):
        """Signatures must not depend on how rows are split into blocks."""
        from scipy import sparse

        import repro.lsh.families as families_module

        rng = np.random.default_rng(5)
        matrix = sparse.random(60, 40, density=0.25, random_state=rng, format="csr")
        matrix.data[:] = 1.0
        family = MinHashFamily(6, random_state=3)
        family.ensure_initialised(40)
        full = family._hash_matrix(matrix)
        original = families_module._MINHASH_BLOCK_ELEMENTS
        try:
            families_module._MINHASH_BLOCK_ELEMENTS = 7  # force tiny blocks
            tiny_blocks = family._hash_matrix(matrix)
        finally:
            families_module._MINHASH_BLOCK_ELEMENTS = original
        np.testing.assert_array_equal(full, tiny_blocks)

    def test_oversized_dimension_rejected(self):
        from scipy import sparse

        family = MinHashFamily(4, random_state=0)
        family.ensure_initialised(1 << 31)
        with pytest.raises(ValidationError):
            family._hash_matrix(sparse.csr_matrix((1, 1 << 31)))
