"""Tests for the one-pass similarity histogram."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.join import SimilarityHistogram, exact_join_size, exact_join_sizes
from repro.vectors import VectorCollection


class TestSimilarityHistogram:
    def test_join_sizes_match_exact_oracle(self, small_collection, small_histogram):
        thresholds = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
        expected = exact_join_sizes(small_collection, thresholds)
        observed = small_histogram.join_sizes(thresholds)
        np.testing.assert_array_equal(observed, expected)

    def test_total_pairs_conserved(self, small_collection, small_histogram):
        assert small_histogram.total_pairs == small_collection.total_pairs
        assert small_histogram.positive_pairs <= small_histogram.total_pairs

    def test_bin_counts_sum_to_positive_pairs(self, small_histogram):
        assert int(small_histogram.bin_counts.sum()) == small_histogram.positive_pairs

    def test_join_size_monotone(self, small_histogram):
        sizes = [small_histogram.join_size(t) for t in np.linspace(0.05, 1.0, 20)]
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))

    def test_selectivity(self, small_histogram):
        selectivity = small_histogram.selectivity(0.5)
        assert selectivity == small_histogram.join_size(0.5) / small_histogram.total_pairs

    def test_threshold_validation(self, small_histogram):
        with pytest.raises(ValidationError):
            small_histogram.join_size(0.0)
        with pytest.raises(ValidationError):
            small_histogram.join_size(1.0001)

    def test_invalid_construction_parameters(self, tiny_collection):
        with pytest.raises(ValidationError):
            SimilarityHistogram(tiny_collection, num_bins=0)
        with pytest.raises(ValidationError):
            SimilarityHistogram(tiny_collection, block_size=0)

    def test_duplicate_pairs_land_in_top_bin(self):
        collection = VectorCollection.from_dense([[1.0, 0.0]] * 3 + [[0.0, 1.0]])
        histogram = SimilarityHistogram(collection, num_bins=10)
        assert histogram.join_size(1.0) == 3
        assert histogram.bin_counts[-1] == 3

    def test_block_size_independence(self, small_collection):
        coarse = SimilarityHistogram(small_collection, num_bins=100, block_size=64)
        fine = SimilarityHistogram(small_collection, num_bins=100, block_size=1024)
        np.testing.assert_array_equal(coarse.bin_counts, fine.bin_counts)

    def test_moment_zero_is_positive_pair_count(self, small_histogram):
        assert small_histogram.moment(0) == pytest.approx(small_histogram.positive_pairs)

    def test_moments_decreasing(self, small_histogram):
        moments = [small_histogram.moment(order) for order in range(1, 6)]
        assert all(a >= b for a, b in zip(moments, moments[1:]))

    def test_moment_validation(self, small_histogram):
        with pytest.raises(ValidationError):
            small_histogram.moment(-1)

    def test_exact_on_grid_thresholds(self, small_collection):
        """Thresholds on the bin grid are answered exactly."""
        histogram = SimilarityHistogram(small_collection, num_bins=20)
        for threshold in (0.25, 0.5, 0.75):
            assert histogram.join_size(threshold) == exact_join_size(
                small_collection, threshold
            )
