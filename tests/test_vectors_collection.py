"""Tests for :class:`repro.vectors.collection.VectorCollection`."""

import numpy as np
import pytest
from scipy import sparse

from repro.errors import (
    DimensionMismatchError,
    EmptyCollectionError,
    ValidationError,
)
from repro.vectors import VectorCollection


class TestConstruction:
    def test_from_dense_shape(self):
        collection = VectorCollection.from_dense([[1.0, 2.0], [0.0, 3.0]])
        assert collection.size == 2
        assert collection.dimension == 2

    def test_from_sparse(self):
        matrix = sparse.random(5, 10, density=0.3, random_state=0, format="csr")
        collection = VectorCollection.from_sparse(matrix)
        assert collection.size == 5
        assert collection.dimension == 10

    def test_from_dicts(self):
        collection = VectorCollection.from_dicts([{0: 1.0, 3: 2.0}, {1: 4.0}])
        assert collection.size == 2
        assert collection.dimension == 4
        assert collection.row_dict(0) == {0: 1.0, 3: 2.0}

    def test_from_dicts_explicit_dimension(self):
        collection = VectorCollection.from_dicts([{0: 1.0}], dimension=10)
        assert collection.dimension == 10

    def test_from_dicts_dimension_too_small_raises(self):
        with pytest.raises(DimensionMismatchError):
            VectorCollection.from_dicts([{5: 1.0}], dimension=3)

    def test_from_dicts_negative_index_raises(self):
        with pytest.raises(ValidationError):
            VectorCollection.from_dicts([{-1: 1.0}])

    def test_from_dicts_empty_raises(self):
        with pytest.raises(EmptyCollectionError):
            VectorCollection.from_dicts([])

    def test_from_token_sets_is_binary(self):
        collection = VectorCollection.from_token_sets([{0, 2}, {1}], dimension=3)
        np.testing.assert_array_equal(
            collection.row_dense(0), np.array([1.0, 0.0, 1.0])
        )

    def test_empty_matrix_raises(self):
        with pytest.raises(EmptyCollectionError):
            VectorCollection(np.zeros((0, 3)))

    def test_zero_dimension_raises(self):
        with pytest.raises(ValidationError):
            VectorCollection(np.zeros((3, 0)))

    def test_non_finite_values_raise(self):
        with pytest.raises(ValidationError):
            VectorCollection.from_dense([[1.0, np.nan]])
        with pytest.raises(ValidationError):
            VectorCollection.from_dense([[np.inf, 1.0]])

    def test_one_dimensional_input_raises(self):
        with pytest.raises(ValidationError):
            VectorCollection(np.array([1.0, 2.0, 3.0]))

    def test_copy_isolates_caller_matrix(self):
        matrix = sparse.csr_matrix(np.eye(3))
        collection = VectorCollection(matrix, copy=True)
        matrix[0, 0] = 99.0
        assert collection.row_dense(0)[0] == 1.0

    def test_explicit_zeros_are_eliminated(self):
        matrix = sparse.csr_matrix(np.array([[1.0, 0.0], [0.0, 2.0]]))
        matrix.data[0] = 0.0  # force an explicit zero
        collection = VectorCollection(matrix)
        assert collection.matrix.nnz == 1


class TestProperties:
    def test_len_matches_size(self, tiny_collection):
        assert len(tiny_collection) == tiny_collection.size == 6

    def test_total_pairs(self, tiny_collection):
        assert tiny_collection.total_pairs == 6 * 5 // 2

    def test_norms(self, tiny_collection):
        expected = np.array([1.0, 1.0, np.sqrt(2.0), 1.0, np.sqrt(2.0), 1.0])
        np.testing.assert_allclose(tiny_collection.norms, expected)

    def test_normalized_matrix_unit_rows(self, tiny_collection):
        norms = np.sqrt(
            np.asarray(
                tiny_collection.normalized_matrix.multiply(
                    tiny_collection.normalized_matrix
                ).sum(axis=1)
            ).ravel()
        )
        np.testing.assert_allclose(norms, np.ones(6), atol=1e-12)

    def test_normalized_matrix_handles_zero_rows(self):
        collection = VectorCollection.from_dicts([{0: 0.0}, {1: 3.0}], dimension=2)
        normalized = collection.normalized_matrix
        assert normalized[0].nnz == 0
        assert normalized[1, 1] == pytest.approx(1.0)

    def test_nnz_per_row(self, binary_collection):
        np.testing.assert_array_equal(
            binary_collection.nnz_per_row, np.array([4, 4, 4, 3, 5, 2])
        )

    def test_norms_cached(self, tiny_collection):
        assert tiny_collection.norms is tiny_collection.norms


class TestAccess:
    def test_row_returns_sparse_row(self, tiny_collection):
        row = tiny_collection.row(2)
        assert row.shape == (1, 4)
        assert row.nnz == 2

    def test_row_dense(self, tiny_collection):
        np.testing.assert_array_equal(
            tiny_collection.row_dense(3), np.array([0.0, 1.0, 0.0, 0.0])
        )

    def test_row_dict(self, tiny_collection):
        assert tiny_collection.row_dict(2) == {0: 1.0, 1: 1.0}

    def test_row_support(self, tiny_collection):
        np.testing.assert_array_equal(tiny_collection.row_support(4), np.array([2, 3]))

    def test_row_out_of_range(self, tiny_collection):
        with pytest.raises(ValidationError):
            tiny_collection.row(6)
        with pytest.raises(ValidationError):
            tiny_collection.row(-1)

    def test_subset_preserves_rows(self, tiny_collection):
        subset = tiny_collection.subset([0, 2, 4])
        assert subset.size == 3
        np.testing.assert_array_equal(subset.row_dense(1), tiny_collection.row_dense(2))

    def test_subset_out_of_range(self, tiny_collection):
        with pytest.raises(ValidationError):
            tiny_collection.subset([0, 99])

    def test_subset_empty_raises(self, tiny_collection):
        with pytest.raises(ValidationError):
            tiny_collection.subset([])

    def test_concat(self, tiny_collection):
        combined = tiny_collection.concat(tiny_collection)
        assert combined.size == 12
        np.testing.assert_array_equal(
            combined.row_dense(7), tiny_collection.row_dense(1)
        )

    def test_concat_dimension_mismatch(self, tiny_collection):
        other = VectorCollection.from_dense([[1.0, 2.0]])
        with pytest.raises(DimensionMismatchError):
            tiny_collection.concat(other)
