"""Tests for the unified estimation engine (config, backends, front door)."""

import json
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LSHSSEstimator, RandomPairSampling
from repro.engine import (
    EngineConfig,
    EstimateRequest,
    EstimatorBackend,
    JoinEstimationEngine,
    available_backends,
    register_backend,
)
from repro.engine.backends import _REGISTRY, resolve_backend
from repro.errors import (
    IndexNotBuiltError,
    ReproError,
    UnsupportedOperationError,
    ValidationError,
)
from repro.lsh import LSHIndex
from repro.shard import (
    ShardedMutableIndex,
    ShardedStreamingEstimator,
    ShardRouter,
)
from repro.streaming import (
    ChangeLog,
    Checkpoint,
    Delete,
    Insert,
    MutableLSHIndex,
    StreamingEstimator,
)


# ----------------------------------------------------------------------
# EngineConfig
# ----------------------------------------------------------------------
class TestEngineConfig:
    def test_defaults(self):
        config = EngineConfig()
        assert config.backend == "static"
        assert config.family == "cosine"
        assert config.dimension is None

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError, match="unknown backend"):
            EngineConfig(backend="quantum")

    def test_unknown_option_rejected(self):
        with pytest.raises(ValidationError, match="unknown option"):
            EngineConfig(backend="static", options={"num_shards": 4})

    def test_family_must_be_string(self):
        from repro.lsh import SignRandomProjectionFamily

        with pytest.raises(ValidationError, match="name string"):
            EngineConfig(family=SignRandomProjectionFamily)

    @pytest.mark.parametrize("field,value", [
        ("num_hashes", 0),
        ("num_tables", 0),
        ("dimension", 0),
        ("num_hashes", "20"),
        ("seed", 1.5),
    ])
    def test_bad_scalar_rejected(self, field, value):
        with pytest.raises(ValidationError):
            EngineConfig(**{field: value})

    def test_dict_round_trip(self):
        config = EngineConfig(backend="sharded", dimension=30,
                              options={"num_shards": 3, "partitioner": "rendezvous"})
        assert EngineConfig.from_dict(config.to_dict()) == config

    def test_json_round_trip(self):
        config = EngineConfig(backend="streaming", dimension=8, seed=11,
                              options={"staleness_budget": 0.5})
        assert EngineConfig.from_json(config.to_json()) == config

    def test_file_round_trip(self, tmp_path):
        config = EngineConfig(num_hashes=6)
        path = tmp_path / "engine.json"
        config.to_file(path)
        assert EngineConfig.from_file(path) == config

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValidationError, match="unknown config field"):
            EngineConfig.from_dict({"backend": "static", "shards": 4})

    def test_from_file_missing(self, tmp_path):
        with pytest.raises(ValidationError, match="not found"):
            EngineConfig.from_file(tmp_path / "nope.json")

    def test_from_json_invalid(self):
        with pytest.raises(ValidationError, match="not valid JSON"):
            EngineConfig.from_json("{nope")

    def test_coerce_forms(self, tmp_path):
        config = EngineConfig(seed=3)
        path = tmp_path / "c.json"
        config.to_file(path)
        assert EngineConfig.coerce(config) is config
        assert EngineConfig.coerce(config.to_dict()) == config
        assert EngineConfig.coerce(path) == config
        with pytest.raises(ValidationError):
            EngineConfig.coerce(42)

    def test_replace_revalidates(self):
        config = EngineConfig(backend="sharded", dimension=10)
        with pytest.raises(ValidationError):
            config.replace(backend="nope")

    # the acceptance-criterion property: any valid config survives the
    # dict→json→dict round trip bit-identically
    @given(
        backend=st.sampled_from(["static", "streaming", "sharded"]),
        family=st.sampled_from(["cosine", "jaccard"]),
        num_hashes=st.integers(min_value=1, max_value=64),
        num_tables=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=-(2**31), max_value=2**31),
        dimension=st.one_of(st.none(), st.integers(min_value=1, max_value=10_000)),
    )
    @settings(max_examples=60, deadline=None)
    def test_config_round_trip_property(
        self, backend, family, num_hashes, num_tables, seed, dimension
    ):
        options = {}
        if backend == "streaming":
            options = {"staleness_budget": 0.25, "reservoir_size": 64}
        elif backend == "sharded":
            options = {"num_shards": 3, "partitioner": "rendezvous", "batch_size": 32}
        config = EngineConfig(
            backend=backend, family=family, num_hashes=num_hashes,
            num_tables=num_tables, seed=seed, dimension=dimension, options=options,
        )
        via_json = EngineConfig.from_json(config.to_json())
        assert via_json == config
        # and the JSON form is plain data (no repr round-tripping)
        assert json.loads(config.to_json())["backend"] == backend


# ----------------------------------------------------------------------
# Envelopes
# ----------------------------------------------------------------------
class TestEnvelopes:
    def test_request_dict_round_trip(self):
        request = EstimateRequest(0.8, mode="exact", seed=3, estimator="lsh-s")
        assert EstimateRequest.from_dict(request.to_dict()) == request

    def test_request_needs_threshold(self):
        with pytest.raises(ValidationError, match="threshold"):
            EstimateRequest.from_dict({"mode": "auto"})

    def test_request_rejects_unknown_fields(self):
        with pytest.raises(ValidationError, match="unknown request field"):
            EstimateRequest.from_dict({"threshold": 0.5, "tau": 0.5})

    def test_result_is_float_convertible(self, small_collection):
        with JoinEstimationEngine(EngineConfig(num_hashes=8, seed=1)) as engine:
            engine.ingest(small_collection)
            result = engine.estimate(0.8)
        assert float(result) == result.value
        payload = result.to_dict()
        assert payload["provenance"]["backend"] == "static"
        assert payload["provenance"]["seed"] == 1  # config seed resolved
        assert payload["provenance"]["wall_time_seconds"] >= 0.0

    def test_result_relative_error(self, small_collection):
        with JoinEstimationEngine(EngineConfig(num_hashes=8, seed=1)) as engine:
            engine.ingest(small_collection)
            result = engine.estimate(0.8)
        assert result.relative_error(result.value) == pytest.approx(0.0)


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_estimate_before_open_raises(self):
        engine = JoinEstimationEngine(EngineConfig())
        with pytest.raises(IndexNotBuiltError, match="not open"):
            engine.estimate(0.8)

    def test_double_open_raises(self):
        engine = JoinEstimationEngine(EngineConfig()).open()
        with pytest.raises(ValidationError, match="already open"):
            engine.open()
        engine.close()

    def test_close_idempotent_and_reopenable(self, small_collection):
        engine = JoinEstimationEngine(EngineConfig(num_hashes=8))
        engine.open()
        engine.close()
        engine.close()
        engine.open()  # a closed engine can be reopened fresh
        engine.ingest(small_collection)
        assert engine.size == small_collection.size
        engine.close()

    def test_context_manager_opens_and_closes(self, small_collection):
        with JoinEstimationEngine(EngineConfig(num_hashes=8)) as engine:
            engine.ingest(small_collection)
            assert engine.is_open
        assert not engine.is_open

    @staticmethod
    def _engine_with_failing_close():
        engine = JoinEstimationEngine(EngineConfig(num_hashes=8)).open()

        def explode():
            raise RuntimeError("backend close failed")

        engine.backend.close = explode
        return engine

    def test_close_counts_even_when_backend_close_raises(self):
        engine = self._engine_with_failing_close()
        with pytest.raises(RuntimeError, match="backend close failed"):
            engine.close()
        # the error surfaced once; the engine is closed, a second close
        # must not re-raise (double-close would mask the original cause)
        assert not engine.is_open
        engine.close()

    def test_exit_during_exception_does_not_mask_original(self):
        engine = self._engine_with_failing_close()
        with pytest.raises(ValueError, match="body error") as excinfo:
            with engine:
                raise ValueError("body error")
        # the with-body error stays primary; the backend close failure is
        # chained as context instead of replacing it
        context = excinfo.value.__context__
        assert isinstance(context, RuntimeError)
        assert "backend close failed" in str(context)
        assert not engine.is_open

    def test_exit_without_exception_still_raises_close_error(self):
        engine = self._engine_with_failing_close()
        with pytest.raises(RuntimeError, match="backend close failed"):
            with engine:
                pass
        assert not engine.is_open

    def test_constructor_accepts_dict_and_path(self, tmp_path):
        config = EngineConfig(seed=9)
        path = tmp_path / "c.json"
        config.to_file(path)
        assert JoinEstimationEngine(config.to_dict()).config == config
        assert JoinEstimationEngine(path).config == config

    def test_describe_shows_config_and_backend(self, small_collection):
        with JoinEstimationEngine(EngineConfig(num_hashes=8)) as engine:
            engine.ingest(small_collection)
            description = engine.describe()
        assert description["config"]["backend"] == "static"
        assert description["backend"]["size"] == small_collection.size

    def test_describe_is_cheap_on_an_unbuilt_static_backend(self, small_collection):
        """describe() never forces (or crashes on) the lazy static build."""
        with JoinEstimationEngine(EngineConfig(num_hashes=8)) as engine:
            assert engine.describe()["backend"] == {"size": 0, "total_pairs": 0}
            engine.ingest(small_collection)
            description = engine.describe()["backend"]
            assert description["size"] == small_collection.size
            assert "num_collision_pairs" not in description  # still unbuilt
            engine.estimate(0.8)
            assert "num_collision_pairs" in engine.describe()["backend"]

    def test_ingest_rejects_garbage(self):
        with JoinEstimationEngine(EngineConfig()) as engine:
            with pytest.raises(ValidationError, match="cannot ingest"):
                engine.ingest(3.14)

    def test_estimate_rejects_garbage_request(self, small_collection):
        with JoinEstimationEngine(EngineConfig(num_hashes=8)) as engine:
            engine.ingest(small_collection)
            with pytest.raises(ValidationError, match="needs a threshold"):
                engine.estimate()
            with pytest.raises(ValidationError, match="cannot estimate"):
                engine.estimate(object())
            with pytest.raises(ValidationError, match="positionally and by keyword"):
                engine.estimate(0.8, threshold=0.9)

    def test_estimate_kwargs_override_request_fields(self, small_collection):
        """Keywords alongside a request envelope win over its fields."""
        config = EngineConfig(backend="streaming", num_hashes=8, seed=1,
                              dimension=small_collection.dimension)
        with JoinEstimationEngine(config) as engine:
            engine.ingest(small_collection)
            request = EstimateRequest(0.8, mode="auto", seed=2)
            overridden = engine.estimate(request, mode="exact", seed=5)
            explicit = engine.estimate(EstimateRequest(0.8, mode="exact", seed=5))
        assert overridden.provenance.mode == "exact"
        assert overridden.provenance.seed == 5
        assert overridden.value == explicit.value
        # dict requests get the same treatment, and a threshold keyword
        # completes a threshold-less dict
        with JoinEstimationEngine(EngineConfig(num_hashes=8, seed=1)) as engine:
            engine.ingest(small_collection)
            result = engine.estimate({"threshold": 0.8}, estimator="rs", seed=4)
            completed = engine.estimate({"mode": "exact"}, threshold=0.8, seed=4)
        assert result.estimator == "RS(pop)"
        assert completed.threshold == 0.8
        assert completed.provenance.mode == "exact"


# ----------------------------------------------------------------------
# Bit-identity against direct construction (the engine contract)
# ----------------------------------------------------------------------
class TestBitIdentity:
    def test_static_matches_direct(self, small_collection):
        config = EngineConfig(backend="static", num_hashes=10, seed=5)
        with JoinEstimationEngine(config) as engine:
            engine.ingest(small_collection)
            via_engine = engine.estimate(EstimateRequest(0.8, seed=3))
        index = LSHIndex(small_collection, num_hashes=10, random_state=6)
        direct = LSHSSEstimator(index.primary_table).estimate(0.8, random_state=3)
        assert via_engine.value == direct.value

    def test_static_estimator_flavors_match_direct(self, small_collection):
        config = EngineConfig(backend="static", num_hashes=10, seed=5)
        with JoinEstimationEngine(config) as engine:
            engine.ingest(small_collection)
            via_engine = engine.estimate(0.8, estimator="rs", seed=4)
        direct = RandomPairSampling(small_collection).estimate(0.8, random_state=4)
        assert via_engine.value == direct.value
        assert via_engine.estimator == direct.estimator

    def test_streaming_matches_direct(self, small_collection):
        dimension = small_collection.dimension
        config = EngineConfig(backend="streaming", num_hashes=10, seed=5,
                              dimension=dimension)
        with JoinEstimationEngine(config) as engine:
            engine.ingest(small_collection)
            via_engine = engine.estimate(EstimateRequest(0.8, seed=3, mode="auto"))
        index = MutableLSHIndex(dimension, num_hashes=10, random_state=6)
        estimator = StreamingEstimator(index, random_state=7)
        index.insert_many(small_collection.matrix)
        direct = estimator.estimate(0.8, random_state=3, mode="auto")
        assert via_engine.value == direct.value

    @pytest.mark.parametrize("mode", ["exact", "merged"])
    def test_sharded_matches_direct(self, small_collection, mode):
        dimension = small_collection.dimension
        config = EngineConfig(
            backend="sharded", num_hashes=10, seed=5, dimension=dimension,
            options={"num_shards": 3, "partitioner": "rendezvous", "batch_size": 64},
        )
        with JoinEstimationEngine(config) as engine:
            engine.ingest(small_collection)
            via_engine = engine.estimate(EstimateRequest(0.8, seed=3, mode=mode))
        index = ShardedMutableIndex(
            dimension, num_shards=3, num_hashes=10, random_state=6,
            partitioner="rendezvous",
        )
        router = ShardRouter(index, batch_size=64)
        estimator = ShardedStreamingEstimator(index, router=router)
        index.insert_many(small_collection.matrix)
        direct = estimator.estimate(0.8, random_state=3, mode=mode)
        router.close()
        assert via_engine.value == direct.value

    def test_sharded_exact_matches_unsharded_engine(self, small_collection):
        """Shape-independence: sharded exact == streaming exact for one seed."""
        dimension = small_collection.dimension
        sharded_config = EngineConfig(
            backend="sharded", num_hashes=10, seed=5, dimension=dimension,
            options={"num_shards": 4},
        )
        streaming_config = EngineConfig(
            backend="streaming", num_hashes=10, seed=5, dimension=dimension
        )
        with JoinEstimationEngine(sharded_config) as sharded_engine:
            sharded_engine.ingest(small_collection)
            sharded = sharded_engine.estimate(EstimateRequest(0.7, seed=9, mode="exact"))
        with JoinEstimationEngine(streaming_config) as streaming_engine:
            streaming_engine.ingest(small_collection)
            unsharded = streaming_engine.estimate(EstimateRequest(0.7, seed=9, mode="exact"))
        assert sharded.value == unsharded.value


# ----------------------------------------------------------------------
# Ingest forms and event handling
# ----------------------------------------------------------------------
class TestIngest:
    def _events(self):
        return [
            Insert([1.0, 0.0, 0.0]),
            Insert([1.0, 0.0, 0.0]),
            Insert([0.0, 1.0, 0.0]),
            Checkpoint("mid"),
            Delete(1),
        ]

    def test_changelog_and_event_forms(self):
        config = EngineConfig(backend="streaming", num_hashes=4, dimension=3)
        with JoinEstimationEngine(config) as engine:
            log = ChangeLog()
            log.extend(self._events())
            applied = engine.ingest(log)
            assert applied == 4  # checkpoint does not count
            assert engine.size == 2
            assert engine.ingest(Insert([0.0, 0.0, 1.0])) == 1
            assert engine.size == 3

    def test_static_rejects_deletes(self):
        config = EngineConfig(backend="static", num_hashes=4, dimension=3)
        with JoinEstimationEngine(config) as engine:
            engine.ingest(Insert([1.0, 0.0, 0.0]))
            with pytest.raises(UnsupportedOperationError, match="immutable"):
                engine.ingest(Delete(0))

    def test_static_sparse_insert_needs_dimension(self):
        config = EngineConfig(backend="static", num_hashes=4)
        with JoinEstimationEngine(config) as engine:
            with pytest.raises(ValidationError, match="dimension"):
                engine.ingest(Insert({0: 1.0}))

    def test_static_infers_dimension_from_dense_insert(self):
        config = EngineConfig(backend="static", num_hashes=4)
        with JoinEstimationEngine(config) as engine:
            engine.ingest([Insert([1.0, 0.0]), Insert([1.0, 0.0])])
            assert engine.estimate(0.9, seed=0).value >= 0.0

    def test_static_estimate_without_ingest_raises(self):
        with JoinEstimationEngine(EngineConfig(num_hashes=4)) as engine:
            with pytest.raises(ValidationError, match="no ingested vectors"):
                engine.estimate(0.8)

    def test_static_rebuilds_after_further_ingest(self, small_collection):
        config = EngineConfig(backend="static", num_hashes=8, seed=2)
        with JoinEstimationEngine(config) as engine:
            engine.ingest(small_collection)
            first = engine.estimate(0.8, seed=1)
            engine.ingest(small_collection)  # doubles the corpus
            second = engine.estimate(0.8, seed=1)
        assert second.provenance.backend_details["size"] == 2 * small_collection.size
        assert first.provenance.backend_details["size"] == small_collection.size

    def test_sharded_checkpoint_flushes_buffered_writes(self, small_collection):
        """A checkpoint in an ingested log drains the router buffer."""
        config = EngineConfig(backend="sharded", num_hashes=8, seed=4,
                              dimension=3,
                              options={"num_shards": 2, "batch_size": 1000})
        with JoinEstimationEngine(config) as engine:
            engine.ingest([Insert([1.0, 0.0, 0.0]), Insert([0.0, 1.0, 0.0])])
            # batch_size 1000: nothing flushed yet
            assert engine.backend.describe()["pending_writes"] == 2
            engine.ingest(Checkpoint("consistent"))
            assert engine.backend.describe()["pending_writes"] == 0
            assert engine.size == 2

    def test_mutable_backends_need_dimension(self):
        for backend in ("streaming", "sharded"):
            engine = JoinEstimationEngine(EngineConfig(backend=backend))
            with pytest.raises(ValidationError, match="dimension"):
                engine.open()

    def test_collection_dimension_mismatch_static(self, small_collection):
        config = EngineConfig(backend="static", dimension=small_collection.dimension + 1)
        with JoinEstimationEngine(config) as engine:
            with pytest.raises(ValidationError, match="dimension"):
                engine.ingest(small_collection)


# ----------------------------------------------------------------------
# Mode / estimator-flavor validation per backend
# ----------------------------------------------------------------------
class TestServingValidation:
    def test_static_rejects_streaming_modes(self, small_collection):
        with JoinEstimationEngine(EngineConfig(num_hashes=8)) as engine:
            engine.ingest(small_collection)
            with pytest.raises(ValidationError, match="modes"):
                engine.estimate(0.8, mode="reservoir")

    def test_static_rejects_unknown_flavor(self, small_collection):
        with JoinEstimationEngine(EngineConfig(num_hashes=8)) as engine:
            engine.ingest(small_collection)
            with pytest.raises(ValidationError, match="unknown estimator"):
                engine.estimate(0.8, estimator="magic")

    def test_static_default_flavor_from_options(self, small_collection):
        config = EngineConfig(num_hashes=8, seed=1, options={"estimator": "ju"})
        with JoinEstimationEngine(config) as engine:
            engine.ingest(small_collection)
            assert engine.estimate(0.8).estimator == "J_U"

    @pytest.mark.parametrize("backend", ["streaming", "sharded"])
    def test_single_estimator_backends_reject_flavors(self, backend, small_collection):
        config = EngineConfig(backend=backend, num_hashes=8,
                              dimension=small_collection.dimension)
        with JoinEstimationEngine(config) as engine:
            engine.ingest(small_collection)
            with pytest.raises(UnsupportedOperationError, match="single"):
                engine.estimate(0.8, estimator="lsh-ss")

    @pytest.mark.parametrize("backend", ["static", "streaming"])
    def test_rebalance_unsupported(self, backend, small_collection):
        config = EngineConfig(backend=backend, num_hashes=8,
                              dimension=small_collection.dimension)
        with JoinEstimationEngine(config) as engine:
            with pytest.raises(UnsupportedOperationError, match="rebalanc"):
                engine.rebalance(num_shards=2)


# ----------------------------------------------------------------------
# Snapshot / restore
# ----------------------------------------------------------------------
class TestSnapshotRestore:
    def test_static_round_trip(self, small_collection, tmp_path):
        config = EngineConfig(num_hashes=8, seed=4)
        path = tmp_path / "static.pkl"
        with JoinEstimationEngine(config) as engine:
            engine.ingest(small_collection)
            before = engine.estimate(0.8, seed=2)
            engine.snapshot(path)
        revived = JoinEstimationEngine.restore(path)
        assert revived.config == config
        after = revived.estimate(0.8, seed=2)
        revived.close()
        assert after.value == before.value

    def test_streaming_round_trip_reservoir_state(self, small_collection, tmp_path):
        config = EngineConfig(backend="streaming", num_hashes=8, seed=4,
                              dimension=small_collection.dimension)
        path = tmp_path / "stream.pkl"
        with JoinEstimationEngine(config) as engine:
            engine.ingest(small_collection)
            engine.snapshot(path)
            revived = JoinEstimationEngine.restore(path)
            # reservoir mode draws from checkpointed sampled state: the
            # restored engine must replay it bit-identically
            again = revived.estimate(EstimateRequest(0.7, seed=9, mode="reservoir"))
            original = engine.estimate(EstimateRequest(0.7, seed=9, mode="reservoir"))
            revived.close()
        assert again.value == original.value

    def test_sharded_round_trip(self, small_collection, tmp_path):
        config = EngineConfig(backend="sharded", num_hashes=8, seed=4,
                              dimension=small_collection.dimension,
                              options={"num_shards": 3})
        path = tmp_path / "cluster.pkl"
        with JoinEstimationEngine(config) as engine:
            engine.ingest(small_collection)
            before = engine.estimate(EstimateRequest(0.8, seed=2, mode="exact"))
            engine.snapshot(path)
        revived = JoinEstimationEngine.restore(path)
        after = revived.estimate(EstimateRequest(0.8, seed=2, mode="exact"))
        assert revived.config == config
        revived.close()
        assert after.value == before.value

    def test_restore_raw_sharded_snapshot(self, small_collection, tmp_path):
        """Back-compat: bare ShardedMutableIndex snapshots restore too."""
        index = ShardedMutableIndex(
            small_collection.dimension, num_shards=2, num_hashes=8, random_state=5
        )
        index.insert_many(small_collection.matrix)
        path = tmp_path / "raw.pkl"
        index.snapshot(path)
        direct = ShardedStreamingEstimator(index).estimate(0.8, random_state=2, mode="exact")
        engine = JoinEstimationEngine.restore(path)
        assert engine.config.backend == "sharded"
        result = engine.estimate(EstimateRequest(0.8, seed=2, mode="exact"))
        engine.close()
        assert result.value == direct.value

    def test_restore_raw_streaming_snapshot(self, small_collection, tmp_path):
        index = MutableLSHIndex(small_collection.dimension, num_hashes=8, random_state=5)
        index.insert_many(small_collection.matrix)
        path = tmp_path / "raw.pkl"
        index.snapshot(path)
        engine = JoinEstimationEngine.restore(path)
        assert engine.config.backend == "streaming"
        assert engine.size == small_collection.size
        engine.close()

    def test_restore_config_override_must_match_kind(self, small_collection, tmp_path):
        config = EngineConfig(backend="streaming", num_hashes=8,
                              dimension=small_collection.dimension)
        path = tmp_path / "stream.pkl"
        with JoinEstimationEngine(config) as engine:
            engine.ingest(small_collection)
            engine.snapshot(path)
        with pytest.raises(ValidationError, match="does not match"):
            JoinEstimationEngine.restore(path, config=EngineConfig(backend="static"))

    def test_restore_garbage_rejected(self, tmp_path):
        path = tmp_path / "junk.pkl"
        with open(path, "wb") as handle:
            pickle.dump({"hello": "world"}, handle)
        with pytest.raises(ValidationError, match="not an engine"):
            JoinEstimationEngine.restore(path)
        with pytest.raises(ValidationError, match="not found"):
            JoinEstimationEngine.restore(tmp_path / "absent.pkl")

    def test_engine_bundle_restores_via_low_level_too(self, small_collection, tmp_path):
        """Forward-compat: low-level restore unwraps engine bundles."""
        config = EngineConfig(backend="sharded", num_hashes=8, seed=4,
                              dimension=small_collection.dimension,
                              options={"num_shards": 2})
        path = tmp_path / "bundle.pkl"
        with JoinEstimationEngine(config) as engine:
            engine.ingest(small_collection)
            engine.snapshot(path)
        revived = ShardedMutableIndex.restore(path)
        revived.check_invariants()
        assert revived.size == small_collection.size
        # the streaming unwrap refuses a sharded bundle with a clear error
        with pytest.raises(ValidationError, match="sharded"):
            MutableLSHIndex.restore(path)

    def test_streaming_bundle_restores_via_low_level_too(self, small_collection, tmp_path):
        config = EngineConfig(backend="streaming", num_hashes=8, seed=4,
                              dimension=small_collection.dimension)
        path = tmp_path / "bundle.pkl"
        with JoinEstimationEngine(config) as engine:
            engine.ingest(small_collection)
            engine.snapshot(path)
        revived = MutableLSHIndex.restore(path)
        revived.check_invariants()
        assert revived.size == small_collection.size


# ----------------------------------------------------------------------
# Rebalancing through the front door
# ----------------------------------------------------------------------
class TestRebalance:
    def test_grow_preserves_exact_estimates(self, small_collection):
        config = EngineConfig(backend="sharded", num_hashes=8, seed=4,
                              dimension=small_collection.dimension,
                              options={"num_shards": 2, "partitioner": "rendezvous"})
        with JoinEstimationEngine(config) as engine:
            engine.ingest(small_collection)
            before = engine.estimate(EstimateRequest(0.8, seed=2, mode="exact"))
            plan = engine.rebalance(num_shards=4)
            assert plan.moved_keys >= 0
            assert engine.backend.index.num_shards == 4
            engine.backend.index.check_invariants()
            after = engine.estimate(EstimateRequest(0.8, seed=2, mode="exact"))
        assert after.value == before.value

    def test_dry_run_leaves_data_placement_unchanged(self, small_collection):
        config = EngineConfig(backend="sharded", num_hashes=8, seed=4,
                              dimension=small_collection.dimension,
                              options={"num_shards": 3, "partitioner": "modulo"})
        with JoinEstimationEngine(config) as engine:
            engine.ingest(small_collection)
            sizes_before = [shard.size for shard in engine.backend.index.shards]
            plan = engine.rebalance(partitioner="rendezvous", dry_run=True)
            assert plan.total_keys > 0
            assert [shard.size for shard in engine.backend.index.shards] == sizes_before

    def test_growth_dry_run_is_side_effect_free(self, small_collection):
        """A growth dry run must not leave phantom shards behind."""
        config = EngineConfig(backend="sharded", num_hashes=8, seed=4,
                              dimension=small_collection.dimension,
                              options={"num_shards": 2, "partitioner": "rendezvous"})
        with JoinEstimationEngine(config) as engine:
            engine.ingest(small_collection)
            plan = engine.rebalance(num_shards=5, dry_run=True)
            assert plan.partitioner.num_shards == 5
            assert engine.backend.index.num_shards == 2
            assert engine.describe()["backend"]["num_shards"] == 2
            assert engine.config == config

    def test_applied_rebalance_updates_config(self, small_collection, tmp_path):
        """Snapshots taken after a rebalance describe the adopted shape."""
        config = EngineConfig(backend="sharded", num_hashes=8, seed=4,
                              dimension=small_collection.dimension,
                              options={"num_shards": 2, "partitioner": "modulo"})
        with JoinEstimationEngine(config) as engine:
            engine.ingest(small_collection)
            router_before = engine.backend._router
            engine.rebalance(num_shards=4, partitioner="rendezvous")
            assert engine.config.options["num_shards"] == 4
            assert engine.config.options["partitioner"] == "rendezvous"
            # the router pool is rebuilt for the new shard count and the
            # serving estimator follows it; ingest keeps working
            assert engine.backend._router is not router_before
            assert engine.backend._estimator.router is engine.backend._router
            engine.ingest(small_collection)
            assert engine.size == 2 * small_collection.size
            path = tmp_path / "after.pkl"
            engine.snapshot(path)
        revived = JoinEstimationEngine.restore(path)
        assert revived.config.options["num_shards"] == 4
        assert revived.config.options["partitioner"] == "rendezvous"
        revived.close()


# ----------------------------------------------------------------------
# Backend registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtins_registered(self):
        assert set(available_backends()) >= {"static", "streaming", "sharded"}

    def test_resolve_unknown_kind(self):
        with pytest.raises(ValidationError, match="unknown backend"):
            resolve_backend("quantum")

    def test_duplicate_kind_rejected(self):
        # the decorator rejects the duplicate kind before the (abstract)
        # class would ever need to be instantiable
        with pytest.raises(ValidationError, match="already registered"):

            @register_backend("static")
            class Duplicate(EstimatorBackend):  # pragma: no cover - never built
                pass

    def test_non_backend_class_rejected(self):
        with pytest.raises(ValidationError, match="subclass"):
            register_backend("bogus")(int)

    def test_custom_backend_reachable_through_engine(self, small_collection):
        """The plugin seam: a registered kind works with unchanged caller code."""
        from repro.core.base import Estimate

        @register_backend("toy")
        class ToyBackend(EstimatorBackend):
            OPTIONS = frozenset({"answer"})

            def open(self):
                self._n = 0

            def ingest_collection(self, collection):
                self._n += collection.size
                return collection.size

            def apply_event(self, event):
                return 0

            def estimate(self, threshold, *, mode="auto", random_state=None, estimator=None):
                return Estimate(
                    value=float(self.config.options.get("answer", 42)),
                    estimator="toy",
                    threshold=threshold,
                )

            def describe(self):
                return {"size": self._n, "total_pairs": self.total_pairs}

            def to_state(self):
                return {"format": 1, "kind": "toy-backend", "n": self._n}

            @classmethod
            def from_state(cls, config, state):
                backend = cls(config)
                backend.open()
                backend._n = state["n"]
                return backend

            @property
            def size(self):
                return self._n

            @property
            def total_pairs(self):
                return self._n * (self._n - 1) // 2

        try:
            config = EngineConfig(backend="toy", options={"answer": 7})
            with JoinEstimationEngine(config) as engine:
                engine.ingest(small_collection)
                result = engine.estimate(0.5)
            assert result.value == 7.0
            assert result.provenance.backend == "toy"
        finally:
            _REGISTRY.pop("toy", None)


# ----------------------------------------------------------------------
# Provenance
# ----------------------------------------------------------------------
class TestProvenance:
    def test_sharded_provenance_fields(self, small_collection):
        config = EngineConfig(backend="sharded", num_hashes=8, seed=4,
                              dimension=small_collection.dimension,
                              options={"num_shards": 3, "partitioner": "rendezvous"})
        with JoinEstimationEngine(config) as engine:
            engine.ingest(small_collection)
            result = engine.estimate(EstimateRequest(0.8, seed=1, mode="merged"))
        details = result.provenance.backend_details
        assert details["num_shards"] == 3
        assert sum(details["shard_sizes"]) == small_collection.size
        assert details["partitioner"] == "rendezvous"
        assert details["pending_writes"] == 0
        assert details["num_collision_pairs"] + details["num_non_collision_pairs"] == (
            details["total_pairs"]
        )

    def test_streaming_provenance_has_staleness(self, small_collection):
        config = EngineConfig(backend="streaming", num_hashes=8, seed=4,
                              dimension=small_collection.dimension)
        with JoinEstimationEngine(config) as engine:
            engine.ingest(small_collection)
            result = engine.estimate(0.8)
        staleness = result.provenance.backend_details["staleness"]
        assert 0.0 <= staleness["h"] <= 1.0
        assert 0.0 <= staleness["l"] <= 1.0

    def test_explicit_request_seed_wins(self, small_collection):
        with JoinEstimationEngine(EngineConfig(num_hashes=8, seed=1)) as engine:
            engine.ingest(small_collection)
            result = engine.estimate(0.8, seed=123)
        assert result.provenance.seed == 123

    def test_errors_are_repro_errors(self):
        """CLI error handling catches one base type for every engine failure."""
        assert issubclass(UnsupportedOperationError, ReproError)
        assert issubclass(ValidationError, ReproError)
        assert issubclass(IndexNotBuiltError, ReproError)
