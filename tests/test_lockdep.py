"""Runtime lockdep harness: tracked primitives, order graph, report CLI.

These tests drive :mod:`repro.analysis.lockdep` directly with a private
``LockdepState`` — they never touch the global installed state, so they
compose with a ``REPRO_LOCKDEP=1`` run of the whole suite (where the
conftest hook owns the global graph).
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import lockdep
from repro.analysis.concurrency import find_cycles
from repro.analysis.lockdep import (
    LockdepState,
    ThreadingFacade,
    TrackedCondition,
    TrackedLock,
    TrackedRLock,
    TrackedSemaphore,
    build_lockdep_report_parser,
    run_lockdep_report_from_args,
    unexplained_edges,
)
from repro.obs.metrics import MetricsRegistry

REPO_ROOT = Path(__file__).resolve().parent.parent


def make_lock(state: LockdepState, name: str) -> TrackedLock:
    return TrackedLock(state, threading.Lock(), name)


# ----------------------------------------------------------------------
# order-graph recording
# ----------------------------------------------------------------------
class TestOrderGraph:
    def test_nested_acquire_records_edge(self):
        state = LockdepState(metrics=MetricsRegistry())
        a, b = make_lock(state, "A"), make_lock(state, "B")
        with a:
            with b:
                pass
        assert ("A", "B") in state.edges()
        assert ("B", "A") not in state.edges()
        assert state.cycles() == []

    def test_inversion_creates_cycle(self):
        state = LockdepState(metrics=MetricsRegistry())
        a, b = make_lock(state, "A"), make_lock(state, "B")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        cycles = state.cycles()
        assert cycles, "A->B followed by B->A must form a cycle"
        assert set(cycles[0]) >= {"A", "B"}

    @settings(max_examples=60, deadline=None)
    @given(
        orders=st.lists(st.booleans(), min_size=2, max_size=12).filter(
            lambda seq: True in seq and False in seq
        )
    )
    def test_two_lock_inversion_always_detected(self, orders):
        """However the nestings are interleaved, one inversion = a cycle.

        Each draw is a sequence of nested two-lock critical sections:
        ``True`` nests A->B, ``False`` nests B->A.  Any sequence with
        both orders present must be reported as a potential deadlock —
        even though no single sequential run ever deadlocks.
        """
        state = LockdepState(metrics=MetricsRegistry())
        a, b = make_lock(state, "A"), make_lock(state, "B")
        for a_first in orders:
            outer, inner = (a, b) if a_first else (b, a)
            with outer:
                with inner:
                    pass
        assert state.cycles(), f"inversion missed for order sequence {orders}"

    def test_cross_thread_ordering_also_detected(self):
        """Inverted nestings on two different threads still form a cycle."""
        state = LockdepState(metrics=MetricsRegistry())
        a, b = make_lock(state, "A"), make_lock(state, "B")

        def invert():
            with b:
                with a:
                    pass

        with a:
            with b:
                pass
        worker = threading.Thread(target=invert, name="lockdep-invert")
        worker.start()
        worker.join()
        assert state.cycles()
        stats = state.edges()[("B", "A")]
        assert stats.example_thread == "lockdep-invert"

    def test_reentrant_rlock_records_no_self_edge(self):
        state = LockdepState(metrics=MetricsRegistry())
        r = TrackedRLock(state, threading.RLock(), "R")
        with r:
            with r:
                pass
        assert ("R", "R") not in state.edges()
        assert state.cycles() == []

    def test_trylock_edges_excluded_from_cycles(self):
        """A failed-backoff path cannot wedge: no cycle, but the edge
        still shows for the static-subgraph comparison."""
        state = LockdepState(metrics=MetricsRegistry())
        a, b = make_lock(state, "A"), make_lock(state, "B")
        with a:
            with b:
                pass
        with b:
            assert a.acquire(blocking=False)
            a.release()
        assert state.cycles() == []
        assert state.edges()[("B", "A")].trylock == 1
        assert state.edges()[("B", "A")].blocking == 0
        assert ("B", "A") in state.edges(include_trylock=True)
        assert ("B", "A") not in state.edges(include_trylock=False)

    def test_condition_wait_releases_held_set(self):
        """While parked in ``wait()`` the lock is NOT held: acquisitions
        made by the woken path must not order against it."""
        state = LockdepState(metrics=MetricsRegistry())
        cond = TrackedCondition(state, threading.Condition(), "C")
        other = make_lock(state, "L")
        ready = threading.Event()

        def waiter():
            with cond:
                ready.set()
                cond.wait(timeout=5.0)
                # re-acquired: a fresh held segment begins
                assert state.held_names() == ["C"]

        worker = threading.Thread(target=waiter, name="lockdep-waiter")
        worker.start()
        assert ready.wait(timeout=5.0)
        with other:  # acquired while the waiter sits inside wait()
            with cond:
                cond.notify_all()
        worker.join(timeout=5.0)
        assert not worker.is_alive()
        # the waiter never held C while L was taken — no C->L edge from
        # this interleaving, only the deliberate L->C nesting above
        assert ("C", "L") not in state.edges()
        assert ("L", "C") in state.edges()

    def test_cross_thread_semaphore_release_pops_acquirer_entry(self):
        """A slot released by another thread (Timer-style hand-off) must
        retire the acquirer's stack entry — otherwise every later
        acquisition on the acquiring thread hangs phantom edges off it."""
        state = LockdepState(metrics=MetricsRegistry())
        sem = TrackedSemaphore(state, threading.BoundedSemaphore(1), "S")
        lock = make_lock(state, "L")
        assert sem.acquire()
        releaser = threading.Thread(target=sem.release, name="lockdep-releaser")
        releaser.start()
        releaser.join()
        assert state.held_names() == []
        with lock:
            pass
        assert ("S", "L") not in state.edges()

    def test_held_duration_histogram_observed(self):
        registry = MetricsRegistry()
        state = LockdepState(metrics=registry)
        lock = make_lock(state, "Timed.L")
        with lock:
            time.sleep(0.002)
        histogram = registry.histogram(
            "lockdep_held_seconds",
            buckets=lockdep.HELD_SECONDS_BUCKETS,
            lock="Timed.L",
        )
        assert histogram.count == 1
        assert histogram.sum > 0.0

    def test_graph_dump_is_json_able(self):
        state = LockdepState(metrics=MetricsRegistry())
        a, b = make_lock(state, "A"), make_lock(state, "B")
        with a:
            with b:
                pass
        graph = json.loads(json.dumps(state.graph()))
        assert graph["locks"] == ["A", "B"]
        assert graph["acquires"] == 2
        assert graph["cycles"] == []
        assert graph["edges"][0]["source"] == "A"
        assert graph["edges"][0]["target"] == "B"


# ----------------------------------------------------------------------
# facade + install
# ----------------------------------------------------------------------
class TestFacade:
    def test_facade_constructs_tracked_primitives(self):
        state = LockdepState(metrics=MetricsRegistry())
        facade = ThreadingFacade(state)
        assert isinstance(facade.Lock(), TrackedLock)
        assert isinstance(facade.RLock(), TrackedRLock)
        assert isinstance(facade.Condition(), TrackedCondition)
        assert isinstance(facade.Semaphore(2), TrackedSemaphore)
        assert isinstance(facade.BoundedSemaphore(1), TrackedSemaphore)
        # everything else falls through to the real module
        assert facade.Event is threading.Event
        assert facade.current_thread is threading.current_thread

    def test_condition_unwraps_tracked_lock_argument(self):
        """Condition(tracked_lock) shares the *inner* primitive — one
        acquisition, one held entry, no double tracking."""
        state = LockdepState(metrics=MetricsRegistry())
        facade = ThreadingFacade(state)
        lock = facade.Lock()
        cond = facade.Condition(lock)
        assert cond._inner._lock is lock._inner
        with cond:
            assert state.held_names() == [cond.lockdep_name]
            # the shared primitive really is taken
            assert not lock._inner.acquire(blocking=False)

    def test_derived_names_use_class_and_attribute(self):
        state = LockdepState(metrics=MetricsRegistry())
        facade = ThreadingFacade(state)

        class Owner:
            def __init__(self):
                self.my_lock = facade.Lock()

        owner = Owner()
        assert owner.my_lock.lockdep_name == "Owner.my_lock"

    def test_install_is_scoped_and_reversible(self):
        if lockdep.active_state() is not None:
            pytest.skip("global lockdep install active (REPRO_LOCKDEP=1)")
        import repro.serve.server as server_module

        original = server_module.threading
        state = lockdep.install(["repro.serve.server"])
        try:
            assert lockdep.active_state() is state
            assert isinstance(server_module.threading, ThreadingFacade)
            # idempotent: second install returns the same state
            assert lockdep.install(["repro.serve.server"]) is state
        finally:
            lockdep.uninstall()
        assert server_module.threading is original
        assert lockdep.active_state() is None


# ----------------------------------------------------------------------
# report CLI: observed graph vs static model
# ----------------------------------------------------------------------
def write_graph(tmp_path: Path, edges, locks=None) -> Path:
    path = tmp_path / "graph.json"
    path.write_text(
        json.dumps(
            {
                "locks": locks or sorted({n for e in edges for n in e[:2]}),
                "acquires": len(edges),
                "edges": [
                    {
                        "source": source,
                        "target": target,
                        "blocking": blocking,
                        "trylock": 0,
                        "example_thread": "t",
                    }
                    for source, target, blocking in edges
                ],
                "cycles": [],
            }
        ),
        encoding="utf-8",
    )
    return path


class TestReport:
    def run_report(self, graph_path: Path, *, fmt: str = "text"):
        parser = build_lockdep_report_parser()
        args = parser.parse_args(
            ["--graph", str(graph_path), "--src", str(REPO_ROOT / "src"), "--format", fmt]
        )
        return run_lockdep_report_from_args(args)

    def test_observed_graph_is_static_subgraph(self, tmp_path, capsys):
        """The two real runtime edges are both derivable statically."""
        path = write_graph(
            tmp_path,
            [
                ("EstimationServer._estimate_slots", "EstimationServer._read_serialiser", 1),
                ("EstimationServer._estimate_slots", "GenerationManager._cond", 1),
            ],
        )
        assert self.run_report(path) == 0
        assert "subgraph of the static model" in capsys.readouterr().out

    def test_unexplained_edge_fails(self, tmp_path, capsys):
        path = write_graph(
            tmp_path,
            [("EstimationServer._conn_lock", "GenerationManager._cond", 1)],
        )
        assert self.run_report(path) == 1
        assert "NOT IN STATIC MODEL" in capsys.readouterr().out

    def test_cycle_fails_json(self, tmp_path, capsys):
        path = write_graph(tmp_path, [("A.x", "B.y", 1), ("B.y", "A.x", 1)])
        assert self.run_report(path, fmt="json") == 1
        verdict = json.loads(capsys.readouterr().out)
        assert verdict["ok"] is False
        assert verdict["cycles"]

    def test_trylock_only_inversion_is_not_a_cycle(self, tmp_path):
        path = write_graph(tmp_path, [("A.x", "B.y", 1), ("B.y", "A.x", 0)])
        # blocking=0 on the inverted edge: backoff path, no cycle — but
        # both edges must still be explained by the static model
        assert self.run_report(path) == 1  # A.x/B.y aren't in src's model

    def test_unreadable_graph_exits_two(self, tmp_path):
        assert self.run_report(tmp_path / "missing.json") == 2

    def test_unexplained_edges_helper(self):
        observed = [
            ("EstimationServer._estimate_slots", "GenerationManager._cond"),
            ("Nope.l1", "Nope.l2"),
        ]
        extra = unexplained_edges(observed, [str(REPO_ROOT / "src")])
        assert extra == [("Nope.l1", "Nope.l2")]


# ----------------------------------------------------------------------
# cycle detection helper
# ----------------------------------------------------------------------
class TestFindCycles:
    def test_acyclic(self):
        assert find_cycles([("A", "B"), ("B", "C"), ("A", "C")]) == []

    def test_two_cycle_canonical_rotation(self):
        cycles = find_cycles([("B", "A"), ("A", "B")])
        assert cycles == [["A", "B", "A"]]

    def test_three_cycle(self):
        cycles = find_cycles([("A", "B"), ("B", "C"), ("C", "A")])
        assert cycles == [["A", "B", "C", "A"]]

    def test_disjoint_cycles_both_reported(self):
        cycles = find_cycles(
            [("A", "B"), ("B", "A"), ("X", "Y"), ("Y", "X"), ("A", "X")]
        )
        assert len(cycles) == 2
