"""Tests for :mod:`repro.obs` — metrics, snapshots, tracing, and wiring.

Covers the observability subsystem at every layer it touches:

- instrument semantics (counters, gauges, fixed-bucket histograms) and
  the process-wide enable/disable switch;
- snapshot round trips, registry merge/restore, and the associativity /
  commutativity of :meth:`MetricsSnapshot.merge` (property-based — this
  is what makes the cluster coordinator's per-worker fold order-free);
- span trees: nesting, context propagation, retry-stable contexts,
  bounded buffers, and serialisation;
- the protocol meta envelope (legacy 2-tuple compatibility included);
- the engine surfaces: per-estimate metrics in ``Provenance``,
  ``engine.stats()``, and one cross-process estimate stitching into a
  single trace that spans the coordinator and every worker process.
"""

from __future__ import annotations

import json
import logging
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import make_dblp_like
from repro.engine import EngineConfig, EstimateRequest, JoinEstimationEngine
from repro.errors import ValidationError
from repro.cluster.transport import decode_message, encode_message
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    MetricsSnapshot,
    Span,
    Tracer,
    activate_trace_context,
    current_trace_context,
    enable_json_logging,
    format_metric_name,
    get_tracer,
    histogram_quantile,
    log_json,
    logger,
    obs_enabled,
    set_enabled,
    set_tracer,
    trace,
)
from repro.streaming import Insert

SEED = 7


@pytest.fixture(autouse=True)
def _collection_on():
    """Every test starts with collection enabled and leaves it that way."""
    previous = set_enabled(True)
    yield
    set_enabled(previous)


@pytest.fixture
def fresh_tracer():
    """Swap in an empty process-global tracer for the duration of a test."""
    tracer = Tracer()
    previous = set_tracer(tracer)
    yield tracer
    set_tracer(previous)


@pytest.fixture(scope="module")
def small_collection():
    return make_dblp_like(num_vectors=150, random_state=SEED).collection


# ======================================================================
# instruments
# ======================================================================
class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", op="estimate")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("queue_depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13.0

    def test_histogram_buckets_and_stats(self):
        histogram = MetricsRegistry().histogram("latency", buckets=[0.1, 1.0, 5.0])
        for value in (0.05, 0.5, 0.5, 2.0, 100.0):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(103.05)
        assert histogram.mean == pytest.approx(103.05 / 5)
        # buckets: ≤0.1, ≤1.0, ≤5.0, overflow
        assert histogram.bucket_counts == (1, 2, 1, 1)
        assert histogram.quantile(0.5) == 1.0
        # the overflow bucket reports the last finite bound (a floor)
        assert histogram.quantile(1.0) == 5.0

    def test_same_name_and_labels_share_a_handle(self):
        registry = MetricsRegistry()
        assert registry.counter("c", a=1, b=2) is registry.counter("c", b=2, a=1)
        assert registry.counter("c") is not registry.counter("c", a=1)
        assert len(registry) == 3

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)
        registry = MetricsRegistry()
        assert registry.histogram("h").bounds == DEFAULT_LATENCY_BUCKETS

    def test_bad_histograms_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValidationError):
            registry.histogram("empty", buckets=[])
        with pytest.raises(ValidationError):
            registry.histogram("unordered", buckets=[1.0, 0.5])

    def test_quantile_validation(self):
        histogram = MetricsRegistry().histogram("h", buckets=[1.0])
        with pytest.raises(ValidationError):
            histogram.quantile(1.5)
        assert histogram.quantile(0.5) == 0.0  # empty histogram

    def test_histogram_quantile_on_raw_arrays(self):
        bounds = (0.1, 1.0)
        counts = np.array([0, 3, 1])  # 3 in (0.1, 1.0], 1 overflow
        assert histogram_quantile(bounds, counts, 0.5) == 1.0

    def test_disabled_instruments_are_inert(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        gauge = registry.gauge("g")
        histogram = registry.histogram("h", buckets=[1.0])
        counter.inc(5)
        set_enabled(False)
        assert not obs_enabled()
        counter.inc(100)
        gauge.set(100)
        histogram.observe(0.5)
        # disabling never loses already-collected data
        assert counter.value == 5.0
        assert gauge.value == 0.0
        assert histogram.count == 0

    def test_format_metric_name(self):
        assert format_metric_name("c") == "c"
        assert format_metric_name("c", {"b": 2, "a": 1}) == "c{a=1,b=2}"
        assert format_metric_name("c", (("op", "x"),)) == "c{op=x}"


# ======================================================================
# snapshots: round trips, merge, restore
# ======================================================================
def _loaded_registry():
    registry = MetricsRegistry()
    registry.counter("requests_total", op="estimate").inc(3)
    registry.gauge("pending").set(7)
    histogram = registry.histogram("latency", buckets=[0.1, 1.0])
    histogram.observe(0.05)
    histogram.observe(0.5)
    return registry


class TestSnapshots:
    def test_snapshot_round_trip(self):
        registry = _loaded_registry()
        snapshot = registry.snapshot()
        assert MetricsSnapshot.from_dict(snapshot.to_dict()) == snapshot
        # to_dict is JSON-safe
        json.dumps(snapshot.to_dict())

    def test_snapshot_is_a_copy(self):
        registry = _loaded_registry()
        payload = registry.snapshot().to_dict()
        payload["counters"][0]["value"] = 10**6
        assert registry.counter("requests_total", op="estimate").value == 3.0

    def test_bad_format_rejected(self):
        with pytest.raises(ValidationError):
            MetricsSnapshot({"format": 2})

    def test_merge_adds_and_appends(self):
        a = _loaded_registry().snapshot()
        other = MetricsRegistry()
        other.counter("requests_total", op="estimate").inc(2)
        other.counter("only_in_b").inc(1)
        merged = a.merge(other.snapshot()).to_dict()
        by_name = {
            format_metric_name(e["name"], e["labels"]): e["value"]
            for e in merged["counters"]
        }
        assert by_name["requests_total{op=estimate}"] == 5.0
        assert by_name["only_in_b"] == 1.0

    def test_merge_histograms_elementwise(self):
        a = _loaded_registry().snapshot()
        b = _loaded_registry().snapshot()
        entry = a.merge(b).to_dict()["histograms"][0]
        assert entry["counts"] == [1 * 2, 1 * 2, 0]
        assert entry["count"] == 4
        assert entry["sum"] == pytest.approx(1.1)

    def test_merge_mismatched_bounds_raises(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=[0.1]).observe(0.05)
        b = MetricsRegistry()
        b.histogram("h", buckets=[0.2]).observe(0.05)
        with pytest.raises(ValidationError):
            a.snapshot().merge(b.snapshot())
        with pytest.raises(ValidationError):
            a.merge(b.snapshot())

    def test_registry_merge_folds_into_live_instruments(self):
        registry = _loaded_registry()
        registry.merge(_loaded_registry().snapshot())
        assert registry.counter("requests_total", op="estimate").value == 6.0
        assert registry.histogram("latency", buckets=[0.1, 1.0]).count == 4

    def test_registry_restore_replaces(self):
        snapshot = _loaded_registry().snapshot()
        registry = _loaded_registry()
        registry.counter("extra").inc()
        registry.restore(snapshot)
        assert registry.snapshot() == snapshot

    def test_registry_from_dict(self):
        snapshot = _loaded_registry().snapshot()
        revived = MetricsRegistry.from_dict(snapshot.to_dict())
        assert revived.snapshot() == snapshot

    def test_disabled_snapshot_restore_still_works(self):
        snapshot = _loaded_registry().snapshot()
        set_enabled(False)
        registry = MetricsRegistry.from_dict(snapshot.to_dict())
        # restore writes raw state, not through the gated mutators
        assert registry.snapshot() == snapshot


# ======================================================================
# merge algebra (property-based)
# ======================================================================
_NAMES = st.sampled_from(["alpha", "beta", "gamma"])
_LABELS = st.sampled_from([(), (("op", "x"),), (("op", "y"), ("shard", "0"))])
_BOUNDS = [0.1, 1.0, 5.0]


@st.composite
def _snapshots(draw):
    counters = draw(
        st.dictionaries(st.tuples(_NAMES, _LABELS), st.integers(0, 1000), max_size=4)
    )
    histograms = draw(
        st.dictionaries(
            st.tuples(_NAMES, _LABELS),
            st.tuples(*[st.integers(0, 50)] * (len(_BOUNDS) + 1)),
            max_size=3,
        )
    )
    return MetricsSnapshot(
        {
            "format": 1,
            "counters": [
                {"name": name, "labels": dict(labels), "value": float(value)}
                for (name, labels), value in counters.items()
            ],
            "histograms": [
                {
                    "name": name,
                    "labels": dict(labels),
                    "buckets": list(_BOUNDS),
                    "counts": list(counts),
                    "sum": float(sum(counts)),
                    "count": int(sum(counts)),
                }
                for (name, labels), counts in histograms.items()
            ],
        }
    )


def _canon(snapshot: MetricsSnapshot):
    """Order-free view: merge output order depends on gather order."""
    payload = snapshot.to_dict()
    return {
        section: sorted(
            payload[section], key=lambda e: (e["name"], sorted(e["labels"].items()))
        )
        for section in ("counters", "gauges", "histograms")
    }


class TestMergeAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(a=_snapshots(), b=_snapshots(), c=_snapshots())
    def test_merge_is_associative(self, a, b, c):
        assert _canon(a.merge(b).merge(c)) == _canon(a.merge(b.merge(c)))

    @settings(max_examples=60, deadline=None)
    @given(a=_snapshots(), b=_snapshots())
    def test_merge_is_commutative(self, a, b):
        assert _canon(a.merge(b)) == _canon(b.merge(a))

    @settings(max_examples=30, deadline=None)
    @given(a=_snapshots())
    def test_empty_is_identity(self, a):
        assert _canon(a.merge(MetricsSnapshot.empty())) == _canon(a)
        assert _canon(MetricsSnapshot.empty().merge(a)) == _canon(a)


# ======================================================================
# tracing
# ======================================================================
class TestTracing:
    def test_nesting_builds_a_tree(self, fresh_tracer):
        with trace("outer") as root:
            with trace("inner", kind="child"):
                pass
        inner, outer = fresh_tracer.drain()
        assert (inner.name, outer.name) == ("inner", "outer")
        assert inner.trace_id == outer.trace_id == root.trace_id
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.attributes == {"kind": "child"}
        assert inner.duration is not None and outer.duration is not None
        assert outer.pid == os.getpid()
        # ids are 16-char lowercase hex
        for identifier in (inner.trace_id, inner.span_id, outer.span_id):
            assert len(identifier) == 16
            int(identifier, 16)

    def test_attributes_settable_through_the_span(self, fresh_tracer):
        with trace("op") as span:
            span.set_attribute("rows", 3)
        (finished,) = fresh_tracer.drain()
        assert finished.attributes["rows"] == 3

    def test_disabled_yields_none_and_records_nothing(self, fresh_tracer):
        set_enabled(False)
        with trace("invisible") as span:
            assert span is None
            assert current_trace_context() is None
        assert fresh_tracer.drain() == []

    def test_drain_clears_and_spans_peeks(self, fresh_tracer):
        with trace("a"):
            pass
        assert [s.name for s in fresh_tracer.spans()] == ["a"]
        assert len(fresh_tracer) == 1  # spans() does not consume
        drained = fresh_tracer.drain()
        assert all(isinstance(span, Span) for span in drained)
        assert fresh_tracer.drain() == []

    def test_buffer_is_bounded(self):
        tracer = Tracer(max_spans=4)
        for index in range(10):
            with tracer.trace(f"span-{index}"):
                pass
        names = [span.name for span in tracer.drain()]
        assert names == ["span-6", "span-7", "span-8", "span-9"]

    def test_current_context_only_inside_spans(self, fresh_tracer):
        assert current_trace_context() is None
        with trace("op") as span:
            context = current_trace_context()
            assert context == {"trace_id": span.trace_id, "span_id": span.span_id}
            # retry stability: the context is derived from the open span,
            # so a resend ships the identical ids
            assert current_trace_context() == context
        assert current_trace_context() is None

    def test_activate_remote_context_joins_the_trace(self, fresh_tracer):
        remote = {"trace_id": "00000000000000ab", "span_id": "00000000000000cd"}
        with activate_trace_context(remote):
            assert current_trace_context() == remote
            with trace("worker.op"):
                pass
        assert current_trace_context() is None
        (span,) = fresh_tracer.drain()
        assert span.trace_id == remote["trace_id"]
        assert span.parent_id == remote["span_id"]

    def test_activate_none_detaches(self, fresh_tracer):
        with trace("outer"):
            with activate_trace_context(None):
                assert current_trace_context() is None
                with trace("fresh-root"):
                    pass
        fresh_root, outer = fresh_tracer.drain()
        assert fresh_root.parent_id is None
        assert fresh_root.trace_id != outer.trace_id

    def test_span_dict_round_trip_and_adopt(self, fresh_tracer):
        with trace("op", x=1):
            pass
        (span,) = fresh_tracer.drain()
        revived = Span.from_dict(span.to_dict())
        assert revived.to_dict() == span.to_dict()
        fresh_tracer.adopt([span.to_dict(), revived])
        assert [s.span_id for s in fresh_tracer.drain()] == [span.span_id] * 2

    def test_sibling_ids_are_distinct(self, fresh_tracer):
        with trace("parent"):
            for _ in range(5):
                with trace("child"):
                    pass
        ids = {span.span_id for span in fresh_tracer.drain()}
        assert len(ids) == 6


# ======================================================================
# protocol meta envelope
# ======================================================================
class TestTransportMeta:
    def test_empty_meta_encodes_as_legacy_frame(self):
        assert encode_message("ping", {"x": 1}) == encode_message("ping", {"x": 1}, {})
        assert encode_message("ping", {"x": 1}) == encode_message("ping", {"x": 1}, None)

    def test_meta_round_trip(self):
        meta = {"trace": {"trace_id": "ab", "span_id": "cd"}}
        frame = encode_message("estimate", {"threshold": 0.7}, meta)
        op, payload, decoded_meta = decode_message(frame[8:])
        assert (op, payload, decoded_meta) == ("estimate", {"threshold": 0.7}, meta)

    def test_legacy_two_tuple_still_decodes(self):
        import pickle

        body = pickle.dumps(("ok", {"value": 1}))
        assert decode_message(body) == ("ok", {"value": 1}, {})


# ======================================================================
# engine surfaces
# ======================================================================
class TestEngineObservability:
    def test_provenance_carries_metrics(self, small_collection):
        engine = JoinEstimationEngine(
            EngineConfig(backend="static", num_hashes=12, seed=SEED)
        ).open()
        engine.ingest(small_collection)
        result = engine.estimate(EstimateRequest(0.7, seed=1, mode="exact"))
        engine.close()
        metrics = result.provenance.metrics
        assert metrics["format"] == 1
        counters = {e["name"]: e["value"] for e in metrics["counters"]}
        assert counters["engine_estimates_total"] >= 1.0
        histograms = {e["name"]: e for e in metrics["histograms"]}
        assert histograms["engine_estimate_seconds"]["count"] >= 1

    def test_engine_spans_cover_the_call(self, small_collection, fresh_tracer):
        engine = JoinEstimationEngine(
            EngineConfig(backend="static", num_hashes=12, seed=SEED)
        ).open()
        engine.ingest(small_collection)
        fresh_tracer.drain()
        engine.estimate(EstimateRequest(0.7, seed=1, mode="exact"))
        names = {span.name for span in fresh_tracer.drain()}
        assert "engine.estimate" in names
        engine.close()

    def test_stats_for_static_engine(self, small_collection):
        engine = JoinEstimationEngine(
            EngineConfig(backend="static", num_hashes=12, seed=SEED)
        ).open()
        engine.ingest(small_collection)
        stats = engine.stats()
        engine.close()
        assert stats["config"]["backend"] == "static"
        assert stats["metrics"]["format"] == 1

    def test_stats_for_sharded_engine_sees_router_metrics(self, small_collection):
        engine = JoinEstimationEngine(
            EngineConfig(
                backend="sharded",
                num_hashes=12,
                seed=SEED,
                dimension=small_collection.dimension,
                options={"num_shards": 2},
            )
        ).open()
        engine.ingest(small_collection)
        engine.flush()
        engine.estimate(EstimateRequest(0.7, seed=1, mode="exact"))
        stats = engine.stats()
        engine.close()
        names = {e["name"] for e in stats["metrics"]["counters"]}
        assert "router_events_total" in names
        assert "engine_estimates_total" in names

    def test_bit_identity_across_the_switch(self, small_collection):
        engine = JoinEstimationEngine(
            EngineConfig(backend="static", num_hashes=12, seed=SEED)
        ).open()
        engine.ingest(small_collection)
        request = EstimateRequest(0.7, seed=99, mode="exact")
        value_on = engine.estimate(request).value
        set_enabled(False)
        value_off = engine.estimate(request).value
        set_enabled(True)
        engine.close()
        assert value_on == value_off


# ======================================================================
# cross-process stitching + cluster stats
# ======================================================================
def _dense_rows(dimension: int, count: int, seed: int):
    rng = np.random.default_rng(seed)
    rows = (rng.random((count, dimension)) < 0.4) * rng.random((count, dimension))
    rows[rows.sum(axis=1) == 0.0, 0] = 1.0
    return list(rows)


@pytest.mark.timeout(120)
class TestProcessClusterObservability:
    @pytest.fixture()
    def process_engine(self):
        engine = JoinEstimationEngine(
            EngineConfig(
                backend="process",
                num_hashes=10,
                seed=SEED,
                dimension=8,
                options={"shards": 2, "request_timeout": 30.0},
            )
        ).open()
        try:
            for row in _dense_rows(8, 40, SEED):
                engine.ingest(Insert(row))
            engine.flush()
            yield engine
        finally:
            engine.close()

    def test_one_estimate_one_stitched_trace(self, process_engine, fresh_tracer):
        worker_pids = {
            info["pid"] for info in process_engine.backend.index.worker_infos
        }
        fresh_tracer.drain()
        with trace("test.root") as root:
            process_engine.estimate(EstimateRequest(0.7, seed=3, mode="exact"))
        spans = fresh_tracer.drain()
        assert {span.trace_id for span in spans} == {root.trace_id}
        pids = {span.pid for span in spans}
        assert os.getpid() in pids
        assert worker_pids <= pids
        assert any(span.name.startswith("worker.") for span in spans)
        # the root is the only parentless span; every other span's parent
        # is inside the collected set — one connected tree, no orphans
        ids = {span.span_id for span in spans}
        roots = [span for span in spans if span.parent_id is None]
        assert [span.span_id for span in roots] == [root.span_id]
        assert all(
            span.parent_id in ids for span in spans if span.parent_id is not None
        )

    def test_cluster_stats_merge_worker_registries(self, process_engine):
        process_engine.estimate(EstimateRequest(0.7, seed=3, mode="exact"))
        stats = process_engine.stats()
        assert len(stats["workers"]) == 2
        for row in stats["workers"]:
            assert row["pid"] > 0
            assert row["blocked_seconds"] >= 0.0
            assert row["worker_ingest_seconds"] >= 0.0
        histograms = {e["name"] for e in stats["metrics"]["histograms"]}
        # worker_op_seconds only exists in the worker processes' own
        # registries — seeing it here proves the stats fan-out merged them
        assert "worker_op_seconds" in histograms


# ======================================================================
# export
# ======================================================================
class TestExport:
    def test_enable_json_logging_emits_parseable_lines(self, capsys):
        import io

        stream = io.StringIO()
        previous_level = logger.level
        handler = enable_json_logging(stream)
        try:
            log_json("unit-test", answer=42)
        finally:
            logger.removeHandler(handler)
            logger.setLevel(previous_level)
        (line,) = stream.getvalue().splitlines()
        assert json.loads(line) == {"event": "unit-test", "answer": 42}

    def test_spans_log_at_debug_when_a_handler_listens(self, fresh_tracer):
        import io

        stream = io.StringIO()
        previous_level = logger.level
        handler = enable_json_logging(stream, level=logging.DEBUG)
        try:
            with trace("logged.op"):
                pass
        finally:
            logger.removeHandler(handler)
            logger.setLevel(previous_level)
        events = [json.loads(line) for line in stream.getvalue().splitlines()]
        span_events = [e for e in events if e["event"] == "span"]
        assert span_events and span_events[0]["name"] == "logged.op"
        assert span_events[0]["duration"] is not None

    def test_silent_by_default(self, capsys):
        log_json("nobody-listens", x=1)
        with trace("quiet"):
            pass
        captured = capsys.readouterr()
        assert captured.out == "" and captured.err == ""
