"""Tests for the experiment runner and the report formatting."""

import pytest

from repro.core import LSHSSEstimator, RandomPairSampling
from repro.errors import ValidationError
from repro.evaluation import ExperimentRunner
from repro.evaluation.report import format_table, records_to_markdown, series_table
from repro.evaluation.runner import records_by_estimator


@pytest.fixture(scope="module")
def runner_and_records(request):
    small_collection = request.getfixturevalue("small_collection")
    small_table = request.getfixturevalue("small_table")
    small_histogram = request.getfixturevalue("small_histogram")
    runner = ExperimentRunner(
        small_collection,
        thresholds=[0.3, 0.9],
        num_trials=4,
        histogram=small_histogram,
        random_state=0,
    )
    estimators = [LSHSSEstimator(small_table), RandomPairSampling(small_collection)]
    records = runner.run(estimators)
    return runner, records


class TestExperimentRunner:
    def test_true_sizes_match_histogram(self, runner_and_records, small_histogram):
        runner, _ = runner_and_records
        sizes = runner.true_sizes()
        assert sizes[0.3] == small_histogram.join_size(0.3)
        assert sizes[0.9] == small_histogram.join_size(0.9)

    def test_record_count(self, runner_and_records):
        _, records = runner_and_records
        assert len(records) == 2 * 2  # estimators x thresholds

    def test_each_record_has_requested_trials(self, runner_and_records):
        _, records = runner_and_records
        assert all(len(record.estimates) == 4 for record in records)

    def test_runtime_measured(self, runner_and_records):
        _, records = runner_and_records
        assert all(record.mean_runtime_seconds > 0 for record in records)

    def test_summary_attached(self, runner_and_records):
        _, records = runner_and_records
        for record in records:
            assert record.summary.num_trials == 4
            assert record.summary.true_size == record.true_size

    def test_as_dict(self, runner_and_records):
        _, records = runner_and_records
        row = records[0].as_dict()
        assert {"estimator", "threshold", "true_size", "mean_estimate"}.issubset(row)

    def test_records_by_estimator(self, runner_and_records):
        _, records = runner_and_records
        grouped = records_by_estimator(records)
        assert set(grouped) == {"LSH-SS", "RS(pop)"}
        assert len(grouped["LSH-SS"]) == 2

    def test_run_estimator_with_custom_thresholds(self, runner_and_records, small_table):
        runner, _ = runner_and_records
        records = runner.run_estimator(
            LSHSSEstimator(small_table), thresholds=[0.5], num_trials=2
        )
        assert len(records) == 1
        assert len(records[0].estimates) == 2

    def test_reproducible_given_master_seed(self, small_collection, small_table, small_histogram):
        def build():
            runner = ExperimentRunner(
                small_collection,
                thresholds=[0.5],
                num_trials=3,
                histogram=small_histogram,
                random_state=42,
            )
            return runner.run([LSHSSEstimator(small_table)])[0].estimates

        assert build() == build()

    def test_invalid_parameters(self, small_collection):
        with pytest.raises(ValidationError):
            ExperimentRunner(small_collection, thresholds=[], num_trials=1)
        with pytest.raises(ValidationError):
            ExperimentRunner(small_collection, thresholds=[0.5], num_trials=0)

    def test_run_requires_estimators(self, runner_and_records):
        runner, _ = runner_and_records
        with pytest.raises(ValidationError):
            runner.run([])


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.34567], ["xyz", 9]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_records_to_markdown(self, runner_and_records):
        _, records = runner_and_records
        markdown = records_to_markdown(records, title="Demo")
        assert markdown.startswith("### Demo")
        assert markdown.count("|") > 10
        assert "LSH-SS" in markdown

    def test_series_table_contains_all_thresholds(self, runner_and_records):
        _, records = runner_and_records
        table = series_table(records, title="Figure X")
        assert "0.3" in table and "0.9" in table
        assert "LSH-SS over%" in table
