"""Tests for the top-level public API surface."""

import repro


class TestPublicAPI:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export: {name}"

    def test_key_estimators_exported(self):
        for name in (
            "LSHSSEstimator",
            "LSHSEstimator",
            "UniformityEstimator",
            "RandomPairSampling",
            "CrossSampling",
            "LatticeCountingEstimator",
            "MedianEstimator",
            "VirtualBucketEstimator",
        ):
            assert name in repro.__all__

    def test_substrates_exported(self):
        for name in (
            "VectorCollection",
            "LSHIndex",
            "LSHTable",
            "SimilarityHistogram",
            "exact_join_size",
            "make_dblp_like",
            "ExperimentRunner",
        ):
            assert name in repro.__all__

    def test_docstring_quickstart_runs(self):
        """The quickstart in the package docstring must actually work."""
        corpus = repro.make_dblp_like(num_vectors=300, random_state=0)
        index = repro.LSHIndex(corpus.collection, num_hashes=10, random_state=0)
        estimator = repro.LSHSSEstimator(index.primary_table)
        estimate = estimator.estimate(0.8, random_state=0)
        true_size = repro.exact_join_size(corpus.collection, 0.8)
        assert estimate.value >= 0
        assert true_size >= 0
