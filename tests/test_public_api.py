"""Tests for the top-level public API surface."""

import types

import repro


class TestPublicAPI:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export: {name}"

    def test_all_matches_exports_both_directions(self):
        """``__all__`` is exactly the public surface: nothing missing, nothing extra.

        Every public module-level attribute (submodules excluded) must be
        listed, and everything listed must resolve — so an import added to
        ``repro/__init__.py`` without an ``__all__`` entry (or vice versa)
        fails here instead of silently drifting.
        """
        exported = {
            name
            for name in dir(repro)
            if not name.startswith("_")
            and not isinstance(getattr(repro, name), types.ModuleType)
        }
        listed = set(repro.__all__) - {"__version__"}
        assert exported - listed == set(), f"public but not in __all__: {sorted(exported - listed)}"
        assert listed - exported == set(), f"in __all__ but not public: {sorted(listed - exported)}"

    def test_engine_surface_exported(self):
        for name in (
            "JoinEstimationEngine",
            "EngineConfig",
            "EstimateRequest",
            "EstimateResult",
            "Provenance",
            "EstimatorBackend",
            "register_backend",
            "available_backends",
        ):
            assert name in repro.__all__
        # and the engine subpackage agrees with the top level
        from repro import engine

        for name in engine.__all__:
            if hasattr(repro, name):
                assert getattr(repro, name) is getattr(engine, name)

    def test_key_estimators_exported(self):
        for name in (
            "LSHSSEstimator",
            "LSHSEstimator",
            "UniformityEstimator",
            "RandomPairSampling",
            "CrossSampling",
            "LatticeCountingEstimator",
            "MedianEstimator",
            "VirtualBucketEstimator",
        ):
            assert name in repro.__all__

    def test_substrates_exported(self):
        for name in (
            "VectorCollection",
            "LSHIndex",
            "LSHTable",
            "SimilarityHistogram",
            "exact_join_size",
            "make_dblp_like",
            "ExperimentRunner",
        ):
            assert name in repro.__all__

    def test_docstring_quickstart_runs(self):
        """The quickstart in the package docstring must actually work."""
        corpus = repro.make_dblp_like(num_vectors=300, random_state=0)
        index = repro.LSHIndex(corpus.collection, num_hashes=10, random_state=0)
        estimator = repro.LSHSSEstimator(index.primary_table)
        estimate = estimator.estimate(0.8, random_state=0)
        true_size = repro.exact_join_size(corpus.collection, 0.8)
        assert estimate.value >= 0
        assert true_size >= 0
