"""Tests for the Lattice-Counting adaptation."""

import numpy as np
import pytest

from repro.core import LatticeCountingEstimator
from repro.errors import ValidationError
from repro.lsh import LSHTable, MinHashFamily, SignRandomProjectionFamily
from repro.vectors import VectorCollection


class TestConstruction:
    def test_histogram_is_non_negative(self, small_table):
        estimator = LatticeCountingEstimator(small_table)
        assert np.all(estimator.histogram >= 0.0)

    def test_prefix_counts_exposed(self, small_table):
        estimator = LatticeCountingEstimator(small_table)
        assert estimator.prefix_counts.shape == (small_table.num_hashes,)
        assert np.all(np.diff(estimator.prefix_counts) <= 0)

    def test_invalid_parameters(self, small_table):
        with pytest.raises(ValidationError):
            LatticeCountingEstimator(small_table, num_bins=1)
        with pytest.raises(ValidationError):
            LatticeCountingEstimator(small_table, min_support=0)
        with pytest.raises(ValidationError):
            LatticeCountingEstimator(small_table, min_support=small_table.num_hashes + 1)


class TestEstimates:
    def test_estimates_monotone_in_threshold(self, small_table):
        estimator = LatticeCountingEstimator(small_table)
        values = [estimator.estimate(t).value for t in (0.2, 0.4, 0.6, 0.8)]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_estimate_bounded(self, small_table):
        estimator = LatticeCountingEstimator(small_table)
        for threshold in (0.1, 0.5, 0.9):
            value = estimator.estimate(threshold).value
            assert 0.0 <= value <= small_table.total_pairs

    def test_deterministic(self, small_table):
        estimator = LatticeCountingEstimator(small_table)
        assert estimator.estimate(0.5).value == estimator.estimate(0.5).value

    def test_details_contain_fit(self, small_table):
        details = LatticeCountingEstimator(small_table).estimate(0.5).details
        assert len(details["prefix_counts"]) == small_table.num_hashes
        assert len(details["histogram"]) == len(details["bin_centers"])

    def test_recovers_duplicate_mass_with_minhash(self):
        """With an exact LSH family (MinHash/Jaccard) and a collection whose
        only similar pairs are exact duplicates, the recovered histogram should
        place roughly the duplicate-pair count at the top of the range."""
        token_sets = [{i, i + 100, i + 200} for i in range(60)]
        token_sets += [{0, 100, 200}] * 6  # 6 extra copies of record 0
        collection = VectorCollection.from_token_sets(token_sets)
        table = LSHTable(MinHashFamily(16, random_state=2), collection)
        estimator = LatticeCountingEstimator(table, collision_model="ideal")
        true_duplicate_pairs = 7 * 6 // 2
        assert estimator.estimate(0.95).value == pytest.approx(true_duplicate_pairs, rel=0.5)

    def test_inaccurate_at_high_threshold_on_cosine_data(
        self, small_table, small_histogram
    ):
        """The paper reports LC is consistently outperformed on cosine data
        with binary (sign) LSH functions; on the fixed test corpus its
        high-threshold estimate is off by a large factor."""
        threshold = 0.8
        true_size = small_histogram.join_size(threshold)
        estimate = LatticeCountingEstimator(small_table).estimate(threshold).value
        relative_error = abs(estimate - true_size) / max(true_size, 1)
        assert relative_error > 0.5

    def test_min_support_drops_low_order_moments(self, small_table):
        full = LatticeCountingEstimator(small_table, min_support=1)
        trimmed = LatticeCountingEstimator(small_table, min_support=5)
        # Both must produce valid bounded estimates; the fits differ.
        assert 0.0 <= trimmed.estimate(0.5).value <= small_table.total_pairs
        assert full.prefix_counts.shape == trimmed.prefix_counts.shape

    def test_sensitive_to_k(self, small_collection, small_histogram):
        """LC accuracy depends strongly on k (Figure 4's contrast with LSH-SS)."""
        threshold = 0.5
        values = []
        for k in (5, 30):
            table = LSHTable(SignRandomProjectionFamily(k, random_state=3), small_collection)
            values.append(LatticeCountingEstimator(table).estimate(threshold).value)
        # estimates at different k differ substantially (no stability guarantee)
        assert abs(values[0] - values[1]) > 0.2 * max(values[0], values[1], 1.0)
