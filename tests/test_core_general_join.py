"""Tests for the general (non-self) VSJ estimators (§B.2.2)."""

import numpy as np
import pytest

from repro.core import (
    GeneralLSHSSEstimator,
    GeneralRandomPairSampling,
    PairedLSHTable,
)
from repro.datasets import make_dblp_like
from repro.errors import InsufficientSampleError, ValidationError
from repro.join import exact_general_join_size
from repro.lsh import SignRandomProjectionFamily
from repro.vectors import VectorCollection


@pytest.fixture(scope="module")
def general_join_setup():
    """Two DBLP-like collections sharing a vocabulary, plus a paired table."""
    corpus = make_dblp_like(num_vectors=500, random_state=23)
    collection = corpus.collection
    left = collection.subset(list(range(0, 250)))
    right = collection.subset(list(range(250, 500)))
    family = SignRandomProjectionFamily(10, random_state=31)
    paired = PairedLSHTable(family, left, right)
    return left, right, paired


class TestPairedLSHTable:
    def test_total_pairs_is_cross_product(self, general_join_setup):
        left, right, paired = general_join_setup
        assert paired.total_pairs == left.size * right.size

    def test_strata_partition(self, general_join_setup):
        _, _, paired = general_join_setup
        assert (
            paired.num_collision_pairs + paired.num_non_collision_pairs
            == paired.total_pairs
        )

    def test_collision_count_matches_bucket_products(self, general_join_setup):
        left, right, paired = general_join_setup
        # recompute N_H by brute force over the same-key relation
        count = 0
        for i in range(left.size):
            for j in range(right.size):
                if paired.same_bucket(i, j):
                    count += 1
        assert count == paired.num_collision_pairs

    def test_collision_pair_sampling(self, general_join_setup):
        _, _, paired = general_join_setup
        if paired.num_collision_pairs == 0:
            pytest.skip("no colliding cross pairs for this seed")
        left_ids, right_ids = paired.sample_collision_pairs(100, random_state=0)
        assert left_ids.size == 100
        assert all(paired.same_bucket(int(u), int(v)) for u, v in zip(left_ids, right_ids))

    def test_non_collision_pair_sampling(self, general_join_setup):
        _, _, paired = general_join_setup
        left_ids, right_ids = paired.sample_non_collision_pairs(100, random_state=0)
        assert left_ids.size == 100
        assert not any(paired.same_bucket(int(u), int(v)) for u, v in zip(left_ids, right_ids))

    def test_dimension_mismatch_rejected(self):
        family = SignRandomProjectionFamily(4, random_state=0)
        left = VectorCollection.from_dense([[1.0, 2.0]])
        right = VectorCollection.from_dense([[1.0, 2.0, 3.0]])
        with pytest.raises(ValidationError):
            PairedLSHTable(family, left, right)

    def test_no_shared_buckets_raises_on_h_sampling(self):
        family = SignRandomProjectionFamily(24, random_state=0)
        left = VectorCollection.from_dense(np.eye(5))
        right = VectorCollection.from_dense(-np.eye(5))
        paired = PairedLSHTable(family, left, right)
        if paired.num_collision_pairs == 0:
            with pytest.raises(InsufficientSampleError):
                paired.sample_collision_pairs(5)


class TestGeneralRandomPairSampling:
    def test_estimate_in_range(self, general_join_setup):
        left, right, _ = general_join_setup
        estimator = GeneralRandomPairSampling(left, right)
        value = estimator.estimate(0.5, random_state=0).value
        assert 0.0 <= value <= left.size * right.size

    def test_roughly_unbiased_at_low_threshold(self, general_join_setup):
        left, right, _ = general_join_setup
        true_size = exact_general_join_size(left, right, 0.1)
        estimator = GeneralRandomPairSampling(left, right, sample_size=3000)
        estimates = [estimator.estimate(0.1, random_state=s).value for s in range(20)]
        assert np.mean(estimates) == pytest.approx(true_size, rel=0.25)

    def test_dimension_mismatch(self):
        left = VectorCollection.from_dense([[1.0, 0.0]])
        right = VectorCollection.from_dense([[1.0, 0.0, 0.0]])
        with pytest.raises(ValidationError):
            GeneralRandomPairSampling(left, right)


class TestGeneralLSHSS:
    def test_estimate_in_range(self, general_join_setup):
        _, _, paired = general_join_setup
        estimator = GeneralLSHSSEstimator(paired)
        for threshold in (0.2, 0.5, 0.9):
            value = estimator.estimate(threshold, random_state=0).value
            assert 0.0 <= value <= paired.total_pairs

    def test_low_threshold_accuracy(self, general_join_setup):
        left, right, paired = general_join_setup
        true_size = exact_general_join_size(left, right, 0.1)
        estimator = GeneralLSHSSEstimator(paired)
        estimates = [estimator.estimate(0.1, random_state=s).value for s in range(10)]
        assert np.mean(estimates) == pytest.approx(true_size, rel=0.4)

    def test_details_structure(self, general_join_setup):
        _, _, paired = general_join_setup
        details = GeneralLSHSSEstimator(paired).estimate(0.5, random_state=1).details
        assert "stratum_h" in details and "stratum_l" in details

    def test_dampened_variant(self, general_join_setup):
        _, _, paired = general_join_setup
        estimator = GeneralLSHSSEstimator(paired, dampening="auto")
        assert estimator.name == "LSH-SS(D)-general"
        assert estimator.estimate(0.7, random_state=0).value >= 0.0

    def test_deterministic_given_seed(self, general_join_setup):
        _, _, paired = general_join_setup
        estimator = GeneralLSHSSEstimator(paired)
        assert (
            estimator.estimate(0.4, random_state=2).value
            == estimator.estimate(0.4, random_state=2).value
        )
