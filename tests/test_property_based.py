"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.analysis import (
    collision_joint_probabilities,
    conditional_collision_probabilities,
    uniformity_estimate,
)
from repro.evaluation.metrics import summarize_trials
from repro.join import exact_join_size
from repro.lsh import LSHTable, SignRandomProjectionFamily
from repro.sampling.adaptive import AdaptiveSampleResult
from repro.vectors import VectorCollection, cosine_similarity
from repro.vectors.similarity import (
    angular_collision_to_cosine,
    cosine_to_angular_collision,
)

# Strategies -----------------------------------------------------------------

finite_floats = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)


@st.composite
def dense_collections(draw, min_rows=2, max_rows=12, min_cols=2, max_cols=6):
    rows = draw(st.integers(min_rows, max_rows))
    cols = draw(st.integers(min_cols, max_cols))
    values = draw(
        st.lists(
            st.lists(finite_floats, min_size=cols, max_size=cols),
            min_size=rows,
            max_size=rows,
        )
    )
    return np.asarray(values, dtype=np.float64)


@st.composite
def token_set_collections(draw):
    num_records = draw(st.integers(2, 12))
    records = draw(
        st.lists(
            st.sets(st.integers(0, 30), min_size=1, max_size=10),
            min_size=num_records,
            max_size=num_records,
        )
    )
    return records


# Vector / similarity invariants ----------------------------------------------


class TestSimilarityProperties:
    @given(dense_collections())
    @settings(max_examples=60, deadline=None)
    def test_cosine_similarity_bounded_and_symmetric(self, matrix):
        collection = VectorCollection.from_dense(matrix)
        value_01 = cosine_similarity(collection.row_dense(0), collection.row_dense(1))
        value_10 = cosine_similarity(collection.row_dense(1), collection.row_dense(0))
        assert -1.0 - 1e-9 <= value_01 <= 1.0 + 1e-9
        assert value_01 == pytest.approx(value_10, abs=1e-9)

    @given(dense_collections())
    @settings(max_examples=60, deadline=None)
    def test_self_similarity_is_one_for_nonzero_rows(self, matrix):
        collection = VectorCollection.from_dense(matrix)
        for row in range(collection.size):
            dense = collection.row_dense(row)
            if np.linalg.norm(dense) > 1e-9:
                assert cosine_similarity(dense, dense) == pytest.approx(1.0, abs=1e-9)

    @given(st.floats(min_value=-1.0, max_value=1.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_angular_transform_round_trip(self, cosine):
        collision = cosine_to_angular_collision(cosine)
        assert 0.0 <= collision <= 1.0
        assert angular_collision_to_cosine(collision) == pytest.approx(cosine, abs=1e-9)

    @given(dense_collections(min_rows=3))
    @settings(max_examples=40, deadline=None)
    def test_join_size_monotone_in_threshold(self, matrix):
        collection = VectorCollection.from_dense(matrix)
        low = exact_join_size(collection, 0.2)
        mid = exact_join_size(collection, 0.6)
        high = exact_join_size(collection, 0.95)
        assert low >= mid >= high >= 0
        assert low <= collection.total_pairs


# LSH invariants ---------------------------------------------------------------


class TestLSHProperties:
    @given(token_set_collections(), st.integers(1, 16), st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_strata_partition_all_pairs(self, token_sets, num_hashes, seed):
        collection = VectorCollection.from_token_sets(token_sets, dimension=31)
        table = LSHTable(SignRandomProjectionFamily(num_hashes, random_state=seed), collection)
        assert table.num_collision_pairs + table.num_non_collision_pairs == collection.total_pairs
        assert int(table.bucket_counts.sum()) == collection.size

    @given(token_set_collections(), st.integers(1, 12), st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_identical_records_always_share_a_bucket(self, token_sets, num_hashes, seed):
        token_sets = list(token_sets) + [set(token_sets[0])]
        collection = VectorCollection.from_token_sets(token_sets, dimension=31)
        table = LSHTable(SignRandomProjectionFamily(num_hashes, random_state=seed), collection)
        assert table.same_bucket(0, len(token_sets) - 1)

    @given(token_set_collections(), st.integers(1, 10), st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_enumerated_collision_pairs_match_count(self, token_sets, num_hashes, seed):
        collection = VectorCollection.from_token_sets(token_sets, dimension=31)
        table = LSHTable(SignRandomProjectionFamily(num_hashes, random_state=seed), collection)
        assert len(list(table.iter_collision_pairs())) == table.num_collision_pairs


# Closed-form analysis invariants ----------------------------------------------


class TestAnalysisProperties:
    @given(
        st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
        st.integers(1, 40),
    )
    @settings(max_examples=100, deadline=None)
    def test_joint_probabilities_form_a_distribution(self, threshold, num_hashes):
        joint = collision_joint_probabilities(threshold, num_hashes)
        values = [
            joint.same_bucket_false,
            joint.same_bucket_true,
            joint.different_bucket_false,
            joint.different_bucket_true,
        ]
        assert all(value >= -1e-12 for value in values)
        assert sum(values) == pytest.approx(1.0, abs=1e-9)

    @given(
        st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
        st.integers(1, 40),
    )
    @settings(max_examples=100, deadline=None)
    def test_conditionals_ordered(self, threshold, num_hashes):
        conditional = conditional_collision_probabilities(threshold, num_hashes)
        assert 0.0 <= conditional["P(H|F)"] <= conditional["P(H|T)"] <= 1.0

    @given(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        st.floats(min_value=0.01, max_value=0.99, allow_nan=False),
        st.integers(1, 30),
    )
    @settings(max_examples=100, deadline=None)
    def test_uniformity_estimate_clamped_to_feasible_range(
        self, collisions, threshold, num_hashes
    ):
        total_pairs = 1e6
        value = uniformity_estimate(collisions, total_pairs, threshold, num_hashes)
        assert 0.0 <= value <= total_pairs


# Sampling / metrics invariants -------------------------------------------------


class TestSamplingAndMetricsProperties:
    @given(
        st.integers(0, 50),
        st.integers(1, 1000),
        st.integers(1, 1000),
        st.booleans(),
    )
    @settings(max_examples=100, deadline=None)
    def test_adaptive_estimate_is_non_negative(self, true_count, samples, max_samples, reached):
        samples = min(samples, max_samples)
        true_count = min(true_count, samples)
        result = AdaptiveSampleResult(
            true_count=true_count,
            samples_taken=samples,
            reached_answer_threshold=reached,
            answer_threshold=10,
            max_samples=max_samples,
        )
        assert result.estimate(10**7) >= 0.0
        assert result.estimate(10**7, dampening=0.5) >= 0.0

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=30),
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_trial_summary_consistency(self, estimates, true_size):
        summary = summarize_trials(estimates, true_size)
        assert summary.num_trials == len(estimates)
        assert summary.mean_overestimation >= 0.0
        assert -1.0 <= summary.mean_underestimation <= 0.0
        assert (
            summary.num_overestimates + summary.num_underestimates <= summary.num_trials
        )
