"""Tests for the TF-IDF pipeline."""

import math

import pytest

from repro.errors import ValidationError
from repro.vectors import TfidfVectorizer, Tokenizer, Vocabulary
from repro.vectors.similarity import cosine_similarity


class TestTokenizer:
    def test_basic_tokenization(self):
        assert Tokenizer().tokenize("Hello, World!") == ["hello", "world"]

    def test_preserves_case_when_disabled(self):
        assert Tokenizer(lowercase=False).tokenize("Hello World") == ["Hello", "World"]

    def test_min_token_length(self):
        tokens = Tokenizer(min_token_length=3).tokenize("a an the quick fox")
        assert tokens == ["the", "quick", "fox"]

    def test_numbers_and_underscores_kept(self):
        assert Tokenizer().tokenize("vldb_2011 rocks") == ["vldb_2011", "rocks"]

    def test_callable_interface(self):
        assert Tokenizer()("one two") == ["one", "two"]

    def test_invalid_min_length(self):
        with pytest.raises(ValidationError):
            Tokenizer(min_token_length=0)

    def test_empty_string(self):
        assert Tokenizer().tokenize("") == []


class TestVocabulary:
    def test_add_assigns_sequential_ids(self):
        vocabulary = Vocabulary()
        assert vocabulary.add("a") == 0
        assert vocabulary.add("b") == 1
        assert vocabulary.add("a") == 0

    def test_contains_and_len(self):
        vocabulary = Vocabulary()
        vocabulary.add("x")
        assert "x" in vocabulary
        assert "y" not in vocabulary
        assert len(vocabulary) == 1

    def test_get_missing_returns_none(self):
        assert Vocabulary().get("missing") is None

    def test_from_documents(self):
        vocabulary = Vocabulary.from_documents([["a", "b"], ["b", "c"]])
        assert vocabulary.size == 3

    def test_id_to_token_inverse(self):
        vocabulary = Vocabulary.from_documents([["a", "b"]])
        inverse = vocabulary.id_to_token()
        assert inverse[vocabulary.get("a")] == "a"


class TestTfidfVectorizer:
    @pytest.fixture
    def corpus(self):
        return [
            "the cat sat on the mat",
            "the dog sat on the log",
            "cats and dogs are animals",
        ]

    def test_fit_transform_shape(self, corpus):
        collection = TfidfVectorizer().fit_transform(corpus)
        assert collection.size == 3
        assert collection.dimension == TfidfVectorizer().fit(corpus).vocabulary.size

    def test_transform_requires_fit(self):
        with pytest.raises(ValidationError):
            TfidfVectorizer().transform(["text"])

    def test_fit_empty_raises(self):
        with pytest.raises(ValidationError):
            TfidfVectorizer().fit([])

    def test_common_tokens_downweighted(self, corpus):
        vectorizer = TfidfVectorizer()
        collection = vectorizer.fit_transform(corpus)
        the_id = vectorizer.vocabulary.get("the")
        cat_id = vectorizer.vocabulary.get("cat")
        row = collection.row_dict(0)
        # "the" appears twice in doc 0 but in 2/3 documents, "cat" once in 1/3;
        # the IDF of "cat" must exceed that of "the".
        assert vectorizer.idf_[cat_id] > vectorizer.idf_[the_id]

    def test_binary_mode(self, corpus):
        collection = TfidfVectorizer(binary=True, use_idf=False).fit_transform(corpus)
        assert set(collection.matrix.data.tolist()) == {1.0}

    def test_counts_mode(self, corpus):
        vectorizer = TfidfVectorizer(use_idf=False)
        collection = vectorizer.fit_transform(corpus)
        the_id = vectorizer.vocabulary.get("the")
        assert collection.row_dict(0)[the_id] == pytest.approx(2.0)

    def test_sublinear_tf(self, corpus):
        vectorizer = TfidfVectorizer(use_idf=False, sublinear_tf=True)
        collection = vectorizer.fit_transform(corpus)
        the_id = vectorizer.vocabulary.get("the")
        assert collection.row_dict(0)[the_id] == pytest.approx(1.0 + math.log(2.0))

    def test_min_df_filters_rare_tokens(self, corpus):
        vectorizer = TfidfVectorizer(min_df=2)
        vectorizer.fit(corpus)
        assert vectorizer.vocabulary.get("animals") is None
        assert vectorizer.vocabulary.get("the") is not None

    def test_out_of_vocabulary_tokens_dropped(self, corpus):
        vectorizer = TfidfVectorizer()
        vectorizer.fit(corpus)
        collection = vectorizer.transform(["completely unseen words"])
        assert collection.size == 1
        assert collection.matrix.nnz == 0

    def test_token_list_documents(self):
        vectorizer = TfidfVectorizer()
        collection = vectorizer.fit_transform([["a", "b"], ["b", "c"]])
        assert collection.size == 2

    def test_similar_documents_have_high_cosine(self):
        corpus = [
            "locality sensitive hashing for similarity joins",
            "locality sensitive hashing for similarity join size",
            "completely unrelated text about cooking pasta recipes",
        ]
        collection = TfidfVectorizer().fit_transform(corpus)
        similar = cosine_similarity(collection.row_dense(0), collection.row_dense(1))
        dissimilar = cosine_similarity(collection.row_dense(0), collection.row_dense(2))
        assert similar > 0.6
        assert dissimilar < 0.1

    def test_invalid_min_df(self):
        with pytest.raises(ValidationError):
            TfidfVectorizer(min_df=0)
