"""Tests for the streaming subsystem (mutable index, estimator, events)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.core import LSHSSEstimator
from repro.errors import InsufficientSampleError, ValidationError
from repro.lsh import LSHIndex, SignRandomProjectionFamily
from repro.streaming import (
    ChangeLog,
    Checkpoint,
    Delete,
    Insert,
    MutableLSHIndex,
    MutableLSHTable,
    StreamingEstimator,
)
from repro.streaming.events import event_from_dict, event_to_dict
from repro.vectors import VectorCollection, cosine_pairs


def _bucket_stats(table: MutableLSHTable):
    """Order-independent bucket fingerprint: (n, N_H, sorted bucket sizes)."""
    return (
        table.num_vectors,
        table.num_collision_pairs,
        sorted(table.bucket_sizes.tolist()),
    )


@pytest.fixture
def mutable_index(small_collection) -> MutableLSHIndex:
    return MutableLSHIndex.from_collection(
        small_collection, num_hashes=12, num_tables=2, random_state=19
    )


class TestMutableLSHTable:
    def test_insert_delete_bookkeeping(self):
        family = SignRandomProjectionFamily(4, random_state=0)
        family.ensure_initialised(3)
        table = MutableLSHTable(family)
        signature = np.array([1, 0, 1, 0])
        assert table.insert(0, signature) == 0
        assert table.insert(1, signature) == 1  # same bucket: one new pair
        assert table.insert(2, np.array([0, 0, 0, 0])) == 0
        assert table.num_collision_pairs == 1
        assert table.num_buckets == 2
        assert table.delete(1) == 1
        assert table.num_collision_pairs == 0
        table.check_invariants()

    def test_duplicate_id_rejected(self):
        table = MutableLSHTable(SignRandomProjectionFamily(2, random_state=0))
        table.insert(5, np.array([1, 0]))
        with pytest.raises(ValidationError):
            table.insert(5, np.array([0, 1]))

    def test_unknown_id_delete_rejected(self):
        table = MutableLSHTable(SignRandomProjectionFamily(2, random_state=0))
        with pytest.raises(ValidationError):
            table.delete(3)

    def test_wrong_signature_length_rejected(self):
        table = MutableLSHTable(SignRandomProjectionFamily(3, random_state=0))
        with pytest.raises(ValidationError):
            table.insert(0, np.array([1, 0]))

    def test_sample_collision_pairs_share_bucket(self, mutable_index, rng):
        table = mutable_index.primary_table
        left, right = table.sample_collision_pairs(64, random_state=rng)
        assert np.all(table.same_bucket_many(left, right))
        assert np.all(left != right)

    def test_sample_collision_pairs_empty_stratum(self):
        table = MutableLSHTable(SignRandomProjectionFamily(2, random_state=0))
        table.insert(0, np.array([1, 0]))
        with pytest.raises(InsufficientSampleError):
            table.sample_collision_pairs(4)


class TestMutableLSHIndex:
    def test_bulk_load_matches_static_build(self, small_collection):
        mutable = MutableLSHIndex.from_collection(
            small_collection, num_hashes=12, num_tables=3, random_state=19
        )
        static = LSHIndex(small_collection, num_hashes=12, num_tables=3, random_state=19)
        for mutable_table, static_table in zip(mutable.tables, static.tables):
            assert mutable_table.num_collision_pairs == static_table.num_collision_pairs
            assert mutable_table.num_buckets == static_table.num_buckets
            assert sorted(mutable_table.bucket_sizes.tolist()) == sorted(
                static_table.bucket_counts.tolist()
            )

    def test_incremental_inserts_match_bulk_load(self, small_collection):
        bulk = MutableLSHIndex.from_collection(small_collection, num_hashes=10, random_state=3)
        one_by_one = MutableLSHIndex(small_collection.dimension, num_hashes=10, random_state=3)
        for row in range(small_collection.size):
            one_by_one.insert(small_collection.row(row))
        assert one_by_one.num_collision_pairs == bulk.num_collision_pairs
        assert one_by_one.primary_table.signature_key(5) == bulk.primary_table.signature_key(5)

    def test_sequential_ids_never_reused(self, tiny_collection):
        index = MutableLSHIndex(4, num_hashes=4, random_state=0)
        first = index.insert(tiny_collection.row(0))
        second = index.insert(tiny_collection.row(1))
        assert (first, second) == (0, 1)
        index.delete(first)
        assert index.insert(tiny_collection.row(2)) == 2
        assert first not in index and second in index

    def test_insert_accepts_dict_dense_and_sparse(self):
        index = MutableLSHIndex(5, num_hashes=4, random_state=0)
        index.insert({0: 1.0, 3: 2.0})
        index.insert([0.0, 1.0, 0.0, 0.0, 1.0])
        index.insert(sparse.csr_matrix(np.array([[1.0, 0.0, 0.0, 1.0, 0.0]])))
        assert index.size == 3

    def test_insert_validation(self):
        index = MutableLSHIndex(3, num_hashes=4, random_state=0)
        with pytest.raises(ValidationError):
            index.insert({7: 1.0})  # out-of-range dimension index
        with pytest.raises(ValidationError):
            index.insert([1.0, 2.0])  # wrong dimensionality
        with pytest.raises(ValidationError):
            index.insert([1.0, float("nan"), 0.0])
        with pytest.raises(ValidationError):
            index.delete(99)

    def test_constructor_validation(self):
        with pytest.raises(ValidationError):
            MutableLSHIndex(0, num_hashes=4)
        with pytest.raises(ValidationError):
            MutableLSHIndex(4, num_tables=0)

    def test_insert_delete_round_trip_restores_bucket_stats(self, mutable_index, small_collection):
        before = [_bucket_stats(table) for table in mutable_index.tables]
        pairs_before = mutable_index.num_collision_pairs
        extra_ids = [mutable_index.insert(small_collection.row(r)) for r in range(12)]
        assert mutable_index.num_collision_pairs > pairs_before  # duplicates collide
        for vector_id in extra_ids:
            mutable_index.delete(vector_id)
        mutable_index.check_invariants()
        assert [_bucket_stats(table) for table in mutable_index.tables] == before
        assert mutable_index.num_collision_pairs == pairs_before

    def test_strata_partition_all_pairs(self, mutable_index):
        assert (
            mutable_index.num_collision_pairs + mutable_index.num_non_collision_pairs
            == mutable_index.total_pairs
        )

    def test_cosine_pairs_matches_static(self, mutable_index, small_collection, rng):
        left = rng.integers(0, small_collection.size, size=50)
        right = rng.integers(0, small_collection.size, size=50)
        np.testing.assert_allclose(
            mutable_index.cosine_pairs(left, right),
            cosine_pairs(small_collection, left, right),
        )

    def test_cosine_pairs_unknown_id(self, mutable_index):
        with pytest.raises(ValidationError):
            mutable_index.cosine_pairs([10 ** 6], [0])

    def test_sample_non_collision_pairs_cross_bucket(self, mutable_index, rng):
        left, right = mutable_index.sample_non_collision_pairs(64, random_state=rng)
        table = mutable_index.primary_table
        assert not np.any(table.same_bucket_many(left, right))

    def test_to_collection_round_trip(self, mutable_index, small_collection):
        collection, ids = mutable_index.to_collection()
        assert collection.size == small_collection.size
        position = int(np.flatnonzero(ids == 7)[0])
        np.testing.assert_allclose(
            collection.row_dense(position), small_collection.row_dense(7)
        )

    def test_churn_matches_fresh_build(self, small_collection):
        """After arbitrary churn, N_H equals a fresh batch build's (same seed)."""
        index = MutableLSHIndex.from_collection(small_collection, num_hashes=10, random_state=11)
        rng = np.random.default_rng(0)
        live = list(range(small_collection.size))
        for _ in range(60):
            victim = live.pop(int(rng.integers(0, len(live))))
            index.delete(victim)
        for row in range(20):
            index.insert(small_collection.row(row))
        final_collection, _ = index.to_collection()
        fresh = LSHIndex(final_collection, num_hashes=10, random_state=11)
        assert index.num_collision_pairs == fresh.primary_table.num_collision_pairs
        assert index.total_pairs == final_collection.total_pairs


class TestChangeLogEvents:
    def test_jsonl_round_trip(self, tmp_path):
        log = ChangeLog()
        log.append(Insert({0: 1.0, 2: 0.5}))
        log.append(Insert([0.0, 1.0, 1.0]))
        log.append(Delete(0))
        log.append(Checkpoint("after-first"))
        path = tmp_path / "events.jsonl"
        log.to_jsonl(path)
        loaded = ChangeLog.from_jsonl(path)
        assert len(loaded) == 4
        assert loaded[0] == Insert({0: 1.0, 2: 0.5})
        assert loaded[1] == Insert([0.0, 1.0, 1.0])
        assert loaded[2] == Delete(0)
        assert loaded[3] == Checkpoint("after-first")
        assert loaded.num_mutations == 3

    def test_event_dict_errors(self):
        with pytest.raises(ValidationError):
            event_from_dict({"op": "upsert"})
        with pytest.raises(ValidationError):
            event_from_dict({"op": "insert"})
        with pytest.raises(ValidationError):
            event_from_dict({"op": "delete"})
        with pytest.raises(ValidationError):
            event_to_dict("not an event")

    def test_malformed_jsonl_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"op": "insert", "dense": [1.0]}\nnot json\n')
        with pytest.raises(ValidationError):
            ChangeLog.from_jsonl(path)

    def test_replay_emits_estimates_at_checkpoints(self, small_collection):
        log = ChangeLog()
        for row in range(40):
            log.append(Insert(small_collection.row_dict(row)))
        log.append(Checkpoint("mid"))
        for row in range(40, 80):
            log.append(Insert(small_collection.row_dict(row)))
        log.append(Delete(3))
        log.append(Checkpoint("end"))
        index = MutableLSHIndex(small_collection.dimension, num_hashes=8, random_state=5)
        estimator = StreamingEstimator(index, random_state=1)
        results = log.replay(index, estimator=estimator, threshold=0.8, random_state=2)
        assert [label for label, _ in results] == ["mid", "end"]
        assert index.size == 79
        assert all(estimate.value >= 0 for _, estimate in results)

    def test_replay_matches_fresh_build_property(self, small_collection):
        """Acceptance property: replaying a log yields the strata a fresh
        LSH-SS build over the final collection reports (same seed)."""
        rng = np.random.default_rng(42)
        log = ChangeLog()
        live: list = []
        next_id = 0
        for step in range(200):
            if live and rng.random() < 0.3:
                victim = int(rng.choice(live))
                live.remove(victim)
                log.append(Delete(victim))
            else:
                row = int(rng.integers(0, small_collection.size))
                log.append(Insert(small_collection.row_dict(row)))
                live.append(next_id)
                next_id += 1
        index = MutableLSHIndex(small_collection.dimension, num_hashes=10, random_state=23)
        estimator = StreamingEstimator(index, random_state=7)
        log.replay(index)
        index.check_invariants()

        final_collection, _ = index.to_collection()
        fresh_index = LSHIndex(final_collection, num_hashes=10, random_state=23)
        fresh_estimator = LSHSSEstimator(fresh_index.primary_table)

        streamed = estimator.estimate(0.7, random_state=99, mode="exact")
        batch = fresh_estimator.estimate(0.7, random_state=99)
        assert streamed.details["num_collision_pairs"] == batch.details["num_collision_pairs"]
        assert (
            streamed.details["num_non_collision_pairs"]
            == batch.details["num_non_collision_pairs"]
        )

    def test_pure_insert_replay_estimates_identical_to_batch(self, small_collection):
        """With inserts only, exact-mode draws coincide with the static
        estimator's bit for bit: same seed ⇒ the same estimate value."""
        log = ChangeLog([Insert(small_collection.row_dict(r)) for r in range(small_collection.size)])
        index = MutableLSHIndex(small_collection.dimension, num_hashes=12, random_state=19)
        log.replay(index)
        estimator = StreamingEstimator(index, random_state=3)

        static_index = LSHIndex(small_collection, num_hashes=12, random_state=19)
        static_estimator = LSHSSEstimator(static_index.primary_table)
        for threshold in (0.5, 0.8):
            streamed = estimator.estimate(threshold, random_state=123, mode="exact")
            batch = static_estimator.estimate(threshold, random_state=123)
            assert streamed.value == batch.value


class TestStreamingEstimator:
    def test_parameter_validation(self, mutable_index):
        with pytest.raises(ValidationError):
            StreamingEstimator(mutable_index, sample_size_h=0)
        with pytest.raises(ValidationError):
            StreamingEstimator(mutable_index, reservoir_size=0)
        with pytest.raises(ValidationError):
            StreamingEstimator(mutable_index, staleness_budget=0.0)
        with pytest.raises(ValidationError):
            StreamingEstimator(mutable_index, dampening=1.5)

    def test_invalid_mode_rejected(self, mutable_index):
        estimator = StreamingEstimator(mutable_index, random_state=0)
        with pytest.raises(ValidationError):
            estimator.estimate(0.5, mode="telepathy")

    def test_reservoirs_hold_valid_stratum_pairs(self, small_collection):
        index = MutableLSHIndex.from_collection(small_collection, num_hashes=12, random_state=19)
        estimator = StreamingEstimator(index, reservoir_size=64, random_state=0)
        table = index.primary_table
        h_left, h_right = estimator._reservoir_h.arrays()
        l_left, l_right = estimator._reservoir_l.arrays()
        assert h_left.size == 64 and l_left.size == 64
        assert np.all(table.same_bucket_many(h_left, h_right))
        assert not np.any(table.same_bucket_many(l_left, l_right))

    def test_delete_evicts_reservoir_pairs(self, small_collection):
        index = MutableLSHIndex.from_collection(small_collection, num_hashes=12, random_state=19)
        # maximum budget: repairs never trigger, so evictions stay visible
        estimator = StreamingEstimator(
            index, reservoir_size=64, staleness_budget=1.0, random_state=0
        )
        victims = set()
        h_left, h_right = estimator._reservoir_h.arrays()
        victims.add(int(h_left[0]))
        victims.add(int(h_right[-1]))
        for victim in victims:
            index.delete(victim)
        for reservoir in (estimator._reservoir_h, estimator._reservoir_l):
            left, right = reservoir.arrays()
            assert not (set(left.tolist()) | set(right.tolist())) & victims

    def test_staleness_grows_and_refresh_resets(self, small_collection):
        index = MutableLSHIndex.from_collection(small_collection, num_hashes=12, random_state=19)
        estimator = StreamingEstimator(
            index, reservoir_size=32, staleness_budget=1.0, random_state=0
        )
        assert estimator.staleness_h == 0.0
        for row in range(10):
            index.insert(small_collection.row(row))  # duplicates: must land in buckets
        assert estimator.staleness_h > 0.0
        assert estimator.staleness_l > 0.0
        estimator.refresh()
        assert estimator.staleness_h == 0.0
        assert estimator.staleness_l == 0.0

    def test_auto_repair_keeps_staleness_within_budget(self, small_collection):
        index = MutableLSHIndex.from_collection(small_collection, num_hashes=12, random_state=19)
        estimator = StreamingEstimator(
            index, reservoir_size=32, staleness_budget=0.2, random_state=0
        )
        rng = np.random.default_rng(1)
        live = list(range(small_collection.size))
        for step in range(120):
            if live and rng.random() < 0.4:
                victim = live.pop(int(rng.integers(0, len(live))))
                index.delete(victim)
            else:
                live.append(index.insert(small_collection.row(int(rng.integers(0, 100)))))
            assert estimator.staleness_h <= 0.2
            assert estimator.staleness_l <= 0.2
            deficit_h = 1.0 - len(estimator._reservoir_h) / estimator.reservoir_size
            assert deficit_h <= 0.2

    def test_estimate_details_and_modes(self, small_collection):
        index = MutableLSHIndex.from_collection(small_collection, num_hashes=12, random_state=19)
        estimator = StreamingEstimator(index, random_state=0)
        for mode in ("auto", "exact", "reservoir"):
            estimate = estimator.estimate(0.7, random_state=11, mode=mode)
            assert estimate.details["mode"] == mode
            assert estimate.details["n"] == small_collection.size
            assert 0.0 <= estimate.value <= index.total_pairs
        assert estimator.estimate(0.7, random_state=11, mode="exact").details["source_h"] == "exact"
        assert estimator.estimate(0.7, random_state=11, mode="auto").details["source_h"] == "reservoir"

    def test_estimate_on_tiny_index(self):
        index = MutableLSHIndex(4, num_hashes=4, random_state=0)
        estimator = StreamingEstimator(index, random_state=0)
        assert estimator.estimate(0.5).value == 0.0  # no pairs at all
        index.insert([1.0, 0.0, 0.0, 0.0])
        assert estimator.estimate(0.5).value == 0.0  # still no pairs
        index.insert([1.0, 0.0, 0.0, 0.0])
        estimate = estimator.estimate(0.5, random_state=1)
        assert estimate.value == pytest.approx(1.0)  # the duplicate pair

    def test_reservoir_mode_estimates_are_reasonable(self, small_collection, small_table):
        """Reservoir-path estimates agree with the static estimator's scale."""
        index = MutableLSHIndex.from_collection(small_collection, num_hashes=12, random_state=19)
        estimator = StreamingEstimator(index, reservoir_size=1024, random_state=0)
        static = LSHSSEstimator(small_table)
        threshold = 0.5
        streamed = np.mean(
            [estimator.estimate(threshold, random_state=s, mode="reservoir").value for s in range(10)]
        )
        batch = np.mean([static.estimate(threshold, random_state=s).value for s in range(10)])
        assert streamed == pytest.approx(batch, rel=0.5)


class TestReplayPropertyBased:
    """Hypothesis sweep of the replay ≡ fresh-build acceptance property."""

    POOL_SEED = 77

    @staticmethod
    def _pool() -> VectorCollection:
        rng = np.random.default_rng(TestReplayPropertyBased.POOL_SEED)
        dense = (rng.random((30, 8)) < 0.4) * rng.random((30, 8))
        dense[0] = dense[1]  # guarantee at least one colliding pair
        dense[dense.sum(axis=1) == 0.0, 0] = 1.0
        return VectorCollection.from_dense(dense)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10 ** 6), min_size=1, max_size=40))
    def test_any_op_sequence_matches_fresh_build(self, ops):
        pool = self._pool()
        index = MutableLSHIndex(pool.dimension, num_hashes=6, random_state=13)
        estimator = StreamingEstimator(index, reservoir_size=16, random_state=5)
        live = []
        for op in ops:
            if live and op % 3 == 0:
                victim = live.pop(op % len(live))
                index.delete(victim)
            else:
                live.append(index.insert(pool.row(op % pool.size)))
        index.check_invariants()
        if index.size == 0:
            assert estimator.estimate(0.5, random_state=0).value == 0.0
            return
        final_collection, _ = index.to_collection()
        fresh = LSHIndex(final_collection, num_hashes=6, random_state=13)
        streamed = estimator.estimate(0.5, random_state=1, mode="exact")
        assert streamed.details["num_collision_pairs"] == fresh.primary_table.num_collision_pairs
        assert (
            streamed.details["num_non_collision_pairs"]
            == fresh.primary_table.num_non_collision_pairs
        )


class TestReviewRegressions:
    def test_mutations_never_raise_when_repair_cannot_sample(self):
        """A degenerate stream (rejection sampling of stratum L exhausts its
        attempts) must degrade the reservoir, not fail the mutation."""
        index = MutableLSHIndex(4, num_hashes=2, random_state=0)
        estimator = StreamingEstimator(
            index, reservoir_size=8, staleness_budget=0.01, random_state=0
        )
        vector = [1.0, 0.5, 0.0, 0.0]
        for _ in range(200):
            index.insert(vector)  # one giant bucket: stratum L stays empty
        outlier = index.insert([0.0, 0.0, 1.0, -1.0])  # tiny stratum L appears
        for _ in range(20):
            index.insert(vector)  # repairs keep triggering; must not raise
        index.delete(outlier)
        index.check_invariants()
        # the L reservoir is degraded, and auto estimates still work
        assert estimator.estimate(0.9, random_state=1).value >= 0.0

    def test_insert_many_with_explicit_zeros_matches_insert(self):
        """Explicit stored zeros must not change jaccard signatures between
        the bulk and per-vector paths (replay == fresh build invariant)."""
        data = np.array([1.0, 0.0, 2.0])          # explicit zero at column 2
        indices = np.array([0, 2, 3])
        matrix = sparse.csr_matrix((data, indices, [0, 3]), shape=(1, 5))
        bulk = MutableLSHIndex(5, num_hashes=6, family="jaccard", random_state=9)
        bulk.insert_many(matrix)
        incremental = MutableLSHIndex(5, num_hashes=6, family="jaccard", random_state=9)
        incremental.insert(matrix)
        assert (
            bulk.primary_table.signature_key(0)
            == incremental.primary_table.signature_key(0)
        )

    def test_close_detaches_estimator(self, small_collection):
        index = MutableLSHIndex.from_collection(small_collection, num_hashes=12, random_state=19)
        estimator = StreamingEstimator(
            index, reservoir_size=16, staleness_budget=1.0, random_state=0
        )
        estimator.close()
        index.insert(small_collection.row(0))
        assert estimator.staleness_h == 0.0  # no longer notified
        index.unregister_observer(estimator)  # double-unregister is a no-op

    def test_insert_never_mutates_or_aliases_caller_matrix(self):
        data = np.array([1.0, 0.0, 2.0])  # explicit stored zero
        caller_row = sparse.csr_matrix((data, np.array([0, 2, 3]), [0, 3]), shape=(1, 5))
        index = MutableLSHIndex(5, num_hashes=4, random_state=0)
        vector_id = index.insert(caller_row)
        assert caller_row.nnz == 3  # caller's explicit zero untouched
        assert index._rows[vector_id] is not caller_row
        caller_row[0, 0] = 99.0  # later caller-side write must not leak in
        assert index.cosine_pairs([vector_id], [vector_id])[0] == pytest.approx(1.0)
        assert index._rows[vector_id][0, 0] == 1.0

    def test_explicit_reservoir_mode_refuses_degraded_reservoir(self):
        """mode='reservoir' must honour its bucket-free contract: raise on an
        unusable reservoir rather than silently sampling buckets."""
        index = MutableLSHIndex(4, num_hashes=2, random_state=0)
        estimator = StreamingEstimator(
            index, reservoir_size=8, staleness_budget=0.01, random_state=0
        )
        for _ in range(50):
            index.insert([1.0, 0.5, 0.0, 0.0])
        index.insert([0.0, 0.0, 1.0, -1.0])  # stratum L non-empty
        estimator._reservoir_l.clear()       # force the degraded state a
        estimator._reservoir_l.degraded = True  # failed refill leaves behind
        with pytest.raises(InsufficientSampleError):
            estimator.estimate(0.9, random_state=1, mode="reservoir")
        # empty strata are fine: no reservoir is *needed*
        tiny = MutableLSHIndex(4, num_hashes=4, random_state=0)
        tiny_estimator = StreamingEstimator(tiny, random_state=0)
        assert tiny_estimator.estimate(0.5, mode="reservoir").value == 0.0


class TestRowStore:
    """Unit tests for the pooled row store behind MutableLSHIndex."""

    @staticmethod
    def _store_with(rows):
        from repro.streaming.rowstore import RowStore

        store = RowStore(rows.shape[1])
        matrix = sparse.csr_matrix(np.asarray(rows, dtype=np.float64))
        matrix.sort_indices()
        store.add_many(range(matrix.shape[0]), matrix)
        return store

    def test_gather_round_trips_rows(self):
        dense = np.array([[1.0, 0.0, 2.0], [0.0, 3.0, 0.0], [0.0, 0.0, 0.0]])
        store = self._store_with(dense)
        gathered = store.gather_raw([2, 0, 1])
        np.testing.assert_allclose(gathered.toarray(), dense[[2, 0, 1]])

    def test_gather_normalized_matches_manual(self):
        dense = np.array([[3.0, 4.0, 0.0], [0.0, 0.0, 2.0]])
        store = self._store_with(dense)
        normalized = store.gather_normalized([0, 1]).toarray()
        np.testing.assert_allclose(normalized[0], [0.6, 0.8, 0.0])
        np.testing.assert_allclose(normalized[1], [0.0, 0.0, 1.0])

    def test_zero_row_keeps_unit_scale(self):
        dense = np.array([[0.0, 0.0], [1.0, 0.0]])
        store = self._store_with(dense)
        assert store.inv_norm(0) == 1.0
        np.testing.assert_allclose(store.gather_normalized([0]).toarray(), [[0.0, 0.0]])

    def test_missing_and_duplicate_ids_rejected(self):
        from repro.streaming.rowstore import RowStore

        store = self._store_with(np.eye(3))
        with pytest.raises(ValidationError):
            store.gather_raw([5])
        with pytest.raises(ValidationError):
            store.add(0, sparse.csr_matrix(np.array([[1.0, 0.0, 0.0]])))
        with pytest.raises(ValidationError):
            store.remove(42)
        with pytest.raises(ValidationError):
            RowStore(0)

    def test_slot_reuse_and_compaction_under_churn(self):
        from repro.streaming.rowstore import RowStore

        rng = np.random.default_rng(0)
        store = RowStore(16)
        reference = {}
        next_id = 0
        for _ in range(3000):
            if reference and rng.random() < 0.45:
                victim = int(rng.choice(list(reference)))
                store.remove(victim)
                del reference[victim]
            else:
                row = (rng.random(16) < 0.3) * rng.random(16)
                store.add(next_id, sparse.csr_matrix(row[None, :]))
                reference[next_id] = row
                next_id += 1
            store.check_invariants()
        assert len(store) == len(reference)
        ids = sorted(reference)
        gathered = store.gather_raw(ids).toarray()
        np.testing.assert_allclose(gathered, np.array([reference[i] for i in ids]))

    def test_state_round_trip(self):
        store = self._store_with(np.array([[1.0, 0.0], [0.0, 2.5]]))
        store.remove(0)
        from repro.streaming.rowstore import RowStore

        revived = RowStore.from_state(store.state())
        revived.check_invariants()
        assert list(revived.ids()) == [1]
        np.testing.assert_allclose(revived.gather_raw([1]).toarray(), [[0.0, 2.5]])

    def test_add_many_length_mismatch_rejected(self):
        from repro.streaming.rowstore import RowStore

        store = RowStore(2)
        with pytest.raises(ValidationError):
            store.add_many([0, 1, 2], sparse.csr_matrix(np.eye(2)))


class TestExternalIdsAndSnapshot:
    def test_insert_with_explicit_ids(self, tiny_collection):
        index = MutableLSHIndex(4, num_hashes=4, random_state=0)
        assert index.insert(tiny_collection.row(0), vector_id=10) == 10
        assert index.insert(tiny_collection.row(1)) == 11  # next id follows
        with pytest.raises(ValidationError):
            index.insert(tiny_collection.row(2), vector_id=10)
        with pytest.raises(ValidationError):
            index.insert(tiny_collection.row(2), vector_id=-1)
        ids = index.insert_many(
            tiny_collection.matrix[2:4], vector_ids=[20, 30]
        )
        assert ids.tolist() == [20, 30]
        with pytest.raises(ValidationError):
            index.insert_many(tiny_collection.matrix[2:4], vector_ids=[40, 40])

    def test_failed_batch_leaves_index_untouched(self, tiny_collection):
        """A rejected insert_many batch must not corrupt the index (review
        regression: ids beyond the id space used to half-apply)."""
        from repro.streaming.rowstore import _MAX_ID

        index = MutableLSHIndex(4, num_hashes=4, random_state=0)
        index.insert(tiny_collection.row(0))
        with pytest.raises(ValidationError):
            index.insert_many(tiny_collection.matrix[1:3], vector_ids=[5, _MAX_ID])
        with pytest.raises(ValidationError):
            index.insert(tiny_collection.row(1), vector_id=_MAX_ID + 7)
        index.check_invariants()
        assert index.size == 1
        assert index.insert(tiny_collection.row(1)) == 1  # next id not poisoned

    def test_snapshot_preserves_estimates(self, small_collection, tmp_path):
        index = MutableLSHIndex.from_collection(
            small_collection, num_hashes=12, random_state=19
        )
        rng = np.random.default_rng(1)
        live = list(range(small_collection.size))
        for _ in range(80):
            if rng.random() < 0.5 and len(live) > 2:
                index.delete(live.pop(int(rng.integers(0, len(live)))))
            else:
                live.append(index.insert(small_collection.row(int(rng.integers(0, 100)))))
        path = tmp_path / "index.pkl"
        index.snapshot(path)
        revived = MutableLSHIndex.restore(path)
        revived.check_invariants()
        original = StreamingEstimator(index, random_state=0).estimate(
            0.7, random_state=9, mode="exact"
        )
        restored = StreamingEstimator(revived, random_state=0).estimate(
            0.7, random_state=9, mode="exact"
        )
        assert restored.value == original.value


class TestEstimatorPersistence:
    """Reservoir pairs + staleness counters survive snapshot/restore."""

    def test_staleness_budget_above_one_rejected(self, mutable_index):
        # a budget > 1 could never be exceeded (staleness is a capped
        # fraction), silently disabling repair while claiming a bound
        with pytest.raises(ValidationError):
            StreamingEstimator(mutable_index, staleness_budget=1.5)
        StreamingEstimator(mutable_index, staleness_budget=1.0).close()

    def test_state_round_trip_preserves_reservoirs(self, small_collection):
        import pickle

        index = MutableLSHIndex.from_collection(
            small_collection, num_hashes=12, random_state=19
        )
        estimator = StreamingEstimator(index, reservoir_size=64, random_state=0)
        for row in range(15):
            index.insert(small_collection.row(row))
        index.delete(4)
        state = pickle.loads(pickle.dumps(index.to_state()))
        revived = MutableLSHIndex.from_state(state)
        (restored,) = revived.estimators
        assert isinstance(restored, StreamingEstimator)
        for stratum in ("h", "l"):
            left, right = estimator.reservoir_pairs(stratum)
            r_left, r_right = restored.reservoir_pairs(stratum)
            np.testing.assert_array_equal(r_left, left)
            np.testing.assert_array_equal(r_right, right)
        assert restored.staleness_h == estimator.staleness_h
        assert restored.staleness_l == estimator.staleness_l
        for mode in ("reservoir", "exact", "auto"):
            ours = restored.estimate(0.7, random_state=42, mode=mode)
            theirs = estimator.estimate(0.7, random_state=42, mode=mode)
            assert ours.value == theirs.value

    def test_restored_estimator_replays_repairs_bit_identically(self, small_collection):
        """The maintenance generator resumes mid-stream: mutations applied
        after a restore trigger the same partial resamples the original
        estimator performs."""
        index = MutableLSHIndex.from_collection(
            small_collection, num_hashes=12, random_state=19
        )
        estimator = StreamingEstimator(
            index, reservoir_size=32, staleness_budget=0.1, random_state=7
        )
        revived = MutableLSHIndex.from_state(index.to_state())
        (restored,) = revived.estimators
        rng = np.random.default_rng(3)
        for _ in range(60):  # heavy churn: repairs must fire on both sides
            row = small_collection.row(int(rng.integers(0, small_collection.size)))
            index.insert(row)
            revived.insert(row)
        ours = restored.estimate(0.7, random_state=1, mode="auto")
        theirs = estimator.estimate(0.7, random_state=1, mode="auto")
        assert ours.value == theirs.value
        for stratum in ("h", "l"):
            left, right = estimator.reservoir_pairs(stratum)
            r_left, r_right = restored.reservoir_pairs(stratum)
            np.testing.assert_array_equal(r_left, left)
            np.testing.assert_array_equal(r_right, right)

    def test_bad_estimator_state_rejected(self, mutable_index):
        with pytest.raises(ValidationError):
            StreamingEstimator.from_state(mutable_index, {"format": 99})

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10 ** 6), min_size=1, max_size=40))
    def test_snapshot_restore_estimate_matches_no_snapshot(self, ops):
        """Acceptance property (a): for arbitrary event sequences, a
        snapshot → restore → estimate in reservoir mode equals the
        estimate the never-snapshotted estimator serves."""
        rng = np.random.default_rng(55)
        dense = (rng.random((30, 8)) < 0.4) * rng.random((30, 8))
        dense[0] = dense[1]
        dense[dense.sum(axis=1) == 0.0, 0] = 1.0
        pool = VectorCollection.from_dense(dense)
        index = MutableLSHIndex(pool.dimension, num_hashes=6, random_state=13)
        estimator = StreamingEstimator(index, reservoir_size=16, random_state=5)
        live = []
        for op in ops:
            if live and op % 3 == 0:
                index.delete(live.pop(op % len(live)))
            else:
                live.append(index.insert(pool.row(op % pool.size)))
        revived = MutableLSHIndex.from_state(index.to_state())
        (restored,) = revived.estimators

        def outcome(est):
            try:
                return est.estimate(0.5, random_state=11, mode="reservoir").value
            except InsufficientSampleError:
                return "insufficient"

        assert outcome(restored) == outcome(estimator)
