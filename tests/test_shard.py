"""Tests for the sharded scale-out subsystem (repro.shard)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StrandedWritesError, ValidationError
from repro.shard import (
    KeyPartitioner,
    MergedStrata,
    ShardedMutableIndex,
    ShardedStreamingEstimator,
    ShardRouter,
    merge_strata,
)
from repro.shard.partition import signature_shard_hash
from repro.streaming import (
    ChangeLog,
    Delete,
    Insert,
    MutableLSHIndex,
    StreamingEstimator,
)
from repro.vectors import VectorCollection

SEED = 19
NUM_HASHES = 10


@pytest.fixture(scope="module")
def churned_pair(small_collection, churn_log_factory):
    """(unsharded index, sharded S=4 index) fed the same 400-op churn log."""
    log = churn_log_factory(small_collection, 400)
    unsharded = MutableLSHIndex(
        small_collection.dimension, num_hashes=NUM_HASHES, random_state=SEED
    )
    log.replay(unsharded)
    sharded = ShardedMutableIndex(
        small_collection.dimension, num_shards=4, num_hashes=NUM_HASHES, random_state=SEED
    )
    with ShardRouter(sharded, batch_size=32) as router:
        router.replay(log)
    return unsharded, sharded


class TestKeyPartitioner:
    def test_validation(self):
        with pytest.raises(ValidationError):
            KeyPartitioner(0)

    def test_single_shard_is_constant(self):
        partitioner = KeyPartitioner(1)
        assert partitioner(b"\x01" * 16) == 0

    def test_key_and_signature_paths_agree(self):
        partitioner = KeyPartitioner(7)
        rng = np.random.default_rng(0)
        signatures = rng.integers(0, 2, size=(50, 12)).astype(np.int64)
        batch = partitioner.shard_of_signatures(signatures)
        for position in range(signatures.shape[0]):
            key = np.ascontiguousarray(signatures[position]).tobytes()
            assert partitioner.shard_of(key) == batch[position]

    def test_deterministic_and_spread(self):
        partitioner = KeyPartitioner(4)
        rng = np.random.default_rng(1)
        signatures = rng.integers(0, 2, size=(2000, 16)).astype(np.int64)
        first = partitioner.shard_of_signatures(signatures)
        second = partitioner.shard_of_signatures(signatures)
        np.testing.assert_array_equal(first, second)
        counts = np.bincount(first, minlength=4)
        # 0/1-valued SimHash signatures must still spread across shards
        assert counts.min() > 0.15 * signatures.shape[0]

    def test_hash_handles_1d_and_2d(self):
        one = signature_shard_hash(np.array([1, 0, 1], dtype=np.int64))
        two = signature_shard_hash(np.array([[1, 0, 1], [0, 1, 1]], dtype=np.int64))
        assert one.shape == (1,)
        assert two.shape == (2,)
        assert one[0] == two[0]          # same row → same hash
        assert two[0] != two[1]          # differing rows must split


class TestShardedMutableIndex:
    def test_strata_match_unsharded(self, churned_pair):
        unsharded, sharded = churned_pair
        sharded.check_invariants()
        assert sharded.size == unsharded.size
        assert sharded.num_collision_pairs == unsharded.num_collision_pairs
        assert sharded.num_non_collision_pairs == unsharded.num_non_collision_pairs
        assert sorted(sharded.ids.tolist()) == sorted(unsharded.ids.tolist())

    def test_live_id_order_matches_unsharded(self, churned_pair):
        unsharded, sharded = churned_pair
        np.testing.assert_array_equal(sharded.ids, unsharded.ids)

    def test_cosine_pairs_match_unsharded(self, churned_pair, rng):
        unsharded, sharded = churned_pair
        ids = unsharded.ids
        left = ids[rng.integers(0, ids.size, size=64)]
        right = ids[rng.integers(0, ids.size, size=64)]
        np.testing.assert_array_equal(
            sharded.cosine_pairs(left, right), unsharded.cosine_pairs(left, right)
        )

    def test_sampling_bit_identical_to_unsharded(self, churned_pair):
        unsharded, sharded = churned_pair
        for seed in (0, 7):
            u_left, u_right = unsharded.sample_collision_pairs(128, random_state=seed)
            s_left, s_right = sharded.sample_collision_pairs(128, random_state=seed)
            np.testing.assert_array_equal(s_left, u_left)
            np.testing.assert_array_equal(s_right, u_right)
            u_left, u_right = unsharded.sample_non_collision_pairs(128, random_state=seed)
            s_left, s_right = sharded.sample_non_collision_pairs(128, random_state=seed)
            np.testing.assert_array_equal(s_left, u_left)
            np.testing.assert_array_equal(s_right, u_right)

    def test_facade_streaming_estimator_bit_identical(self, small_collection, churn_log_factory):
        """A plain StreamingEstimator over the facade — reservoirs and all —
        tracks the unsharded one bit for bit through churn."""
        log = churn_log_factory(small_collection, 250, seed=5)
        unsharded = MutableLSHIndex(
            small_collection.dimension, num_hashes=NUM_HASHES, random_state=SEED
        )
        reference = StreamingEstimator(unsharded, random_state=7)
        log.replay(unsharded)
        sharded = ShardedMutableIndex(
            small_collection.dimension,
            num_shards=3,
            num_hashes=NUM_HASHES,
            random_state=SEED,
            shard_estimators=False,
        )
        facade_estimator = StreamingEstimator(sharded, random_state=7)
        log.replay(sharded)  # the facade is a drop-in index for replay
        for mode in ("auto", "exact", "reservoir"):
            ours = facade_estimator.estimate(0.7, random_state=123, mode=mode)
            theirs = reference.estimate(0.7, random_state=123, mode=mode)
            assert ours.value == theirs.value

    def test_to_collection_matches_unsharded(self, churned_pair):
        unsharded, sharded = churned_pair
        u_coll, u_ids = unsharded.to_collection()
        s_coll, s_ids = sharded.to_collection()
        np.testing.assert_array_equal(s_ids, u_ids)
        assert (u_coll.matrix != s_coll.matrix).nnz == 0

    def test_insert_validation(self):
        index = ShardedMutableIndex(4, num_shards=2, num_hashes=4, random_state=0)
        with pytest.raises(ValidationError):
            index.insert([1.0, 2.0])  # wrong dimension
        vector_id = index.insert([1.0, 0.0, 0.0, 1.0])
        with pytest.raises(ValidationError):
            index.insert([0.0, 1.0, 0.0, 0.0], vector_id=vector_id)
        with pytest.raises(ValidationError):
            index.delete(vector_id + 1)
        index.delete(vector_id)
        assert index.size == 0

    def test_row_and_contains(self):
        index = ShardedMutableIndex(3, num_shards=2, num_hashes=4, random_state=0)
        vector_id = index.insert({0: 2.0, 2: 1.0})
        assert vector_id in index
        row = index.row(vector_id)
        assert row.shape == (1, 3)
        assert row[0, 0] == 2.0
        with pytest.raises(ValidationError):
            index.row(99)

    def test_constructor_validation(self):
        with pytest.raises(ValidationError):
            ShardedMutableIndex(0, num_shards=2)
        with pytest.raises(ValidationError):
            ShardedMutableIndex(4, num_shards=0)


class TestShardRouter:
    def test_async_matches_sync(self, small_collection, churn_log_factory):
        log = churn_log_factory(small_collection, 300, seed=9)
        results = []
        for workers in (0, 4):
            sharded = ShardedMutableIndex(
                small_collection.dimension,
                num_shards=4,
                num_hashes=NUM_HASHES,
                random_state=SEED,
            )
            with ShardRouter(sharded, batch_size=25, max_workers=workers) as router:
                router.replay(log)
            estimate = ShardedStreamingEstimator(sharded).estimate(
                0.7, random_state=3, mode="exact"
            )
            results.append((sharded.num_collision_pairs, sharded.size, estimate.value))
        assert results[0] == results[1]

    def test_delete_of_buffered_insert_flushes_first(self):
        index = ShardedMutableIndex(4, num_shards=2, num_hashes=4, random_state=0)
        router = ShardRouter(index, batch_size=100)
        router.insert([1.0, 0.0, 0.0, 0.0])
        router.insert([0.0, 1.0, 0.0, 0.0])
        assert router.pending == 2 and index.size == 0
        router.delete(0)  # targets a still-buffered row
        assert router.pending == 0 and index.size == 1
        router.close()

    def test_replay_emits_at_checkpoints(self, small_collection, churn_log_factory):
        log = churn_log_factory(small_collection, 120, seed=3, checkpoint=True)
        sharded = ShardedMutableIndex(
            small_collection.dimension, num_shards=2, num_hashes=NUM_HASHES, random_state=SEED
        )
        estimator = ShardedStreamingEstimator(sharded)
        with ShardRouter(sharded, batch_size=50) as router:
            results = router.replay(log, estimator=estimator, threshold=0.7, random_state=1)
        assert [label for label, _ in results] == ["end"]
        assert results[0][1].value >= 0.0

    def test_validation(self):
        index = ShardedMutableIndex(4, num_shards=2, num_hashes=4, random_state=0)
        with pytest.raises(ValidationError):
            ShardRouter(index, batch_size=0)
        with pytest.raises(ValidationError):
            ShardRouter(index, max_workers=-1)


class TestRouterFailurePaths:
    """Regression tests for the shutdown / failure hardening of the router."""

    @staticmethod
    def _router_with_failed_commit(buffered=3, batch_size=100):
        index = ShardedMutableIndex(4, num_shards=2, num_hashes=4, random_state=0)
        router = ShardRouter(index, batch_size=batch_size)
        for position in range(buffered):
            row = [0.0, 0.0, 0.0, 0.0]
            row[position % 4] = 1.0
            router.insert(row)

        def explode(*args, **kwargs):
            raise RuntimeError("disk full")

        for shard in index.shards:
            shard.index.insert_many_prepared = explode
        with pytest.raises(RuntimeError):
            router.flush()
        return index, router

    def test_close_raises_instead_of_stranding_buffered_rows(self):
        _index, router = self._router_with_failed_commit(buffered=3)
        assert router.commit_failed and router.pending == 3
        with pytest.raises(StrandedWritesError) as excinfo:
            router.close()
        stranded = excinfo.value.pending_rows
        assert len(stranded) == 3
        # the stranded rows are the actual unapplied inserts, replayable
        # onto a fresh cluster
        assert all(row.shape == (1, 4) for row in stranded)
        # executor already shut down, buffer drained: now idempotent
        router.close()
        router.close()

    def test_drain_pending_then_close_quietly(self):
        _index, router = self._router_with_failed_commit(buffered=2)
        rows = router.drain_pending()
        assert len(rows) == 2 and router.pending == 0
        router.close()  # nothing stranded any more
        fresh = ShardedMutableIndex(4, num_shards=2, num_hashes=4, random_state=0)
        with ShardRouter(fresh) as replacement:
            for row in rows:
                replacement.insert(row)
        assert fresh.size == 2

    def test_context_manager_chains_stranded_error_under_original(self):
        index = ShardedMutableIndex(4, num_shards=2, num_hashes=4, random_state=0)

        def explode(*args, **kwargs):
            raise RuntimeError("disk full")

        with pytest.raises(RuntimeError) as excinfo:
            with ShardRouter(index, batch_size=100) as router:
                router.insert([1.0, 0.0, 0.0, 0.0])
                for shard in index.shards:
                    shard.index.insert_many_prepared = explode
                router.flush()
        # the with-body error stays primary; the close-time stranding is
        # chained context, not a mask
        assert isinstance(excinfo.value.__context__, StrandedWritesError)

    def test_replay_midbatch_failure_chains_flush_error(self, small_collection):
        index = ShardedMutableIndex(
            small_collection.dimension, num_shards=2, num_hashes=4, random_state=0
        )
        router = ShardRouter(index, batch_size=50)
        events = [
            Insert(small_collection.row_dict(0)),
            Insert(small_collection.row_dict(1)),
            object(),  # unknown event type fails mid-stream, 2 rows buffered
        ]

        def explode(*args, **kwargs):
            raise RuntimeError("flush also failed")

        index.commit_batch = explode  # …and the recovery flush fails too
        with pytest.raises(ValidationError) as excinfo:
            router.replay(events)
        # the recovery-flush failure is attached to the original error's
        # context chain instead of being swallowed
        context = excinfo.value.__context__
        assert isinstance(context, RuntimeError)
        assert "flush also failed" in str(context)
        # the unapplied rows stay recoverable
        assert router.pending == 2
        assert len(router.drain_pending()) == 2
        router.close()

    def test_write_after_close_falls_back_to_synchronous(self):
        index = ShardedMutableIndex(4, num_shards=2, num_hashes=4, random_state=0)
        router = ShardRouter(index, batch_size=100, max_workers=4)
        router.insert([1.0, 0.0, 0.0, 0.0])
        router.close()
        assert index.size == 1
        # late writers after close: buffered, then flushed synchronously
        router.insert([0.0, 1.0, 0.0, 0.0])
        assert router.pending == 1
        router.close()
        assert index.size == 2 and router.pending == 0
        index.check_invariants()

    def test_workers_zero_synchronous_mode_matches_threaded(
        self, small_collection, churn_log_factory
    ):
        log = churn_log_factory(small_collection, 150, seed=9)
        results = []
        for workers in (0, 4):
            sharded = ShardedMutableIndex(
                small_collection.dimension,
                num_shards=4,
                num_hashes=NUM_HASHES,
                random_state=SEED,
            )
            with ShardRouter(sharded, batch_size=32, max_workers=workers) as router:
                router.replay(log)
            sharded.check_invariants()
            estimator = ShardedStreamingEstimator(sharded)
            results.append(estimator.estimate(0.7, random_state=4, mode="exact").value)
        assert results[0] == results[1]


class TestMergeLayer:
    def test_merged_strata_identities(self, churned_pair):
        _, sharded = churned_pair
        strata = merge_strata(sharded)
        assert isinstance(strata, MergedStrata)
        assert strata.num_collision_pairs == sum(strata.shard_collision_pairs)
        assert (
            strata.num_collision_pairs + strata.num_non_collision_pairs
            == strata.total_pairs
        )
        intra_l = sum(strata.shard_intra_non_collision_pairs)
        assert strata.num_non_collision_pairs == intra_l + strata.cross_shard_pairs
        assert strata.cross_shard_pairs >= 0

    def test_exact_mode_bit_identical(self, churned_pair):
        unsharded, sharded = churned_pair
        reference = StreamingEstimator(unsharded, random_state=0)
        estimator = ShardedStreamingEstimator(sharded)
        for seed in (1, 99):
            ours = estimator.estimate(0.7, random_state=seed, mode="exact")
            theirs = reference.estimate(0.7, random_state=seed, mode="exact")
            assert ours.value == theirs.value
            assert ours.details["num_collision_pairs"] == theirs.details["num_collision_pairs"]

    def test_merged_mode_samples_valid_strata(self, churned_pair):
        _, sharded = churned_pair
        estimator = ShardedStreamingEstimator(sharded)
        view = sharded.primary_table
        strata = merge_strata(sharded)
        source_h = estimator._merged_source_h(strata)
        source_l = estimator._merged_source_l(strata)
        rng = np.random.default_rng(0)
        left, right = source_h(200, rng)
        assert np.all(view.same_bucket_many(left, right))
        assert np.all(left != right)
        left, right = source_l(200, rng)
        assert not np.any(view.same_bucket_many(left, right))

    def test_merged_mode_estimates_reasonable(self, small_collection, churn_log_factory):
        """Pooled-reservoir estimates agree with the exact path's scale.

        Per-shard reservoirs are enlarged and refreshed so the comparison
        measures the merge arithmetic, not one stale reservoir draw."""
        log = churn_log_factory(small_collection, 400)
        sharded = ShardedMutableIndex(
            small_collection.dimension,
            num_shards=4,
            num_hashes=NUM_HASHES,
            random_state=SEED,
            estimator_kwargs={"reservoir_size": 2048},
        )
        with ShardRouter(sharded, batch_size=32) as router:
            router.replay(log)
        for shard in sharded.shards:
            shard.estimator.refresh()
        estimator = ShardedStreamingEstimator(sharded)
        threshold = 0.5
        # medians: SampleL's adaptive scale-up is heavy-tailed under
        # with-replacement reservoir draws, exactly as in unsharded
        # reservoir mode — the merge layer must not shift the location
        merged = np.median(
            [estimator.estimate(threshold, random_state=s, mode="merged").value
             for s in range(15)]
        )
        exact = np.median(
            [estimator.estimate(threshold, random_state=s, mode="exact").value
             for s in range(15)]
        )
        assert merged == pytest.approx(exact, rel=0.5)

    def test_parameter_validation(self, churned_pair):
        _, sharded = churned_pair
        with pytest.raises(ValidationError):
            ShardedStreamingEstimator(sharded, sample_size_h=0)
        with pytest.raises(ValidationError):
            ShardedStreamingEstimator(sharded, dampening=2.0)
        estimator = ShardedStreamingEstimator(sharded)
        with pytest.raises(ValidationError):
            estimator.estimate(0.7, mode="telepathy")

    def test_empty_cluster_estimates_zero(self):
        sharded = ShardedMutableIndex(4, num_shards=3, num_hashes=4, random_state=0)
        estimator = ShardedStreamingEstimator(sharded)
        assert estimator.estimate(0.5, random_state=0).value == 0.0


class TestSnapshotRestore:
    def test_mutable_index_round_trip(self, small_collection, tmp_path):
        index = MutableLSHIndex.from_collection(
            small_collection, num_hashes=NUM_HASHES, num_tables=2, random_state=SEED
        )
        index.delete(3)
        index.insert(small_collection.row(1))
        path = tmp_path / "index.pkl"
        index.snapshot(path)
        revived = MutableLSHIndex.restore(path)
        revived.check_invariants()
        assert revived.size == index.size
        assert revived.num_collision_pairs == index.num_collision_pairs
        # identical sampling draws and similarities after restore
        left, right = index.sample_collision_pairs(64, random_state=5)
        r_left, r_right = revived.sample_collision_pairs(64, random_state=5)
        np.testing.assert_array_equal(r_left, left)
        np.testing.assert_array_equal(r_right, right)
        np.testing.assert_array_equal(
            revived.cosine_pairs(left, right), index.cosine_pairs(left, right)
        )
        # restored index accepts further mutations with fresh ids
        new_id = revived.insert(small_collection.row(0))
        assert new_id == index._next_id

    def test_sharded_round_trip(self, churned_pair, tmp_path):
        _, sharded = churned_pair
        path = tmp_path / "cluster.pkl"
        sharded.snapshot(path)
        revived = ShardedMutableIndex.restore(path)
        revived.check_invariants()
        assert revived.num_shards == sharded.num_shards
        assert revived.num_collision_pairs == sharded.num_collision_pairs
        original = ShardedStreamingEstimator(sharded).estimate(
            0.7, random_state=42, mode="exact"
        )
        restored = ShardedStreamingEstimator(revived).estimate(
            0.7, random_state=42, mode="exact"
        )
        assert restored.value == original.value

    def test_bad_snapshot_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            MutableLSHIndex.from_state({"format": 99})
        with pytest.raises(ValidationError):
            ShardedMutableIndex.from_state({"format": 1, "kind": "plain"})


class TestShardMergePropertyBased:
    """Hypothesis acceptance property: any event sequence replayed through a
    ShardRouter over S shards yields the same strata counts and the same
    (bit-identical) exact estimate as one unsharded MutableLSHIndex."""

    POOL_SEED = 77

    @staticmethod
    def _pool() -> VectorCollection:
        rng = np.random.default_rng(TestShardMergePropertyBased.POOL_SEED)
        dense = (rng.random((30, 8)) < 0.4) * rng.random((30, 8))
        dense[0] = dense[1]  # guarantee at least one colliding pair
        dense[dense.sum(axis=1) == 0.0, 0] = 1.0
        return VectorCollection.from_dense(dense)

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=10 ** 6), min_size=1, max_size=40),
        st.sampled_from([1, 2, 7]),
    )
    def test_any_op_sequence_matches_unsharded(self, ops, num_shards):
        pool = self._pool()
        log = ChangeLog()
        live = []
        next_id = 0
        for op in ops:
            if live and op % 3 == 0:
                log.append(Delete(live.pop(op % len(live))))
            else:
                log.append(Insert(pool.row_dict(op % pool.size)))
                live.append(next_id)
                next_id += 1
        unsharded = MutableLSHIndex(pool.dimension, num_hashes=6, random_state=13)
        log.replay(unsharded)
        sharded = ShardedMutableIndex(
            pool.dimension, num_shards=num_shards, num_hashes=6, random_state=13
        )
        with ShardRouter(sharded, batch_size=7) as router:
            router.replay(log)
        sharded.check_invariants()
        assert sharded.size == unsharded.size
        assert sharded.num_collision_pairs == unsharded.num_collision_pairs
        assert sharded.num_non_collision_pairs == unsharded.num_non_collision_pairs
        if sharded.size == 0:
            assert ShardedStreamingEstimator(sharded).estimate(0.5).value == 0.0
            return
        ours = ShardedStreamingEstimator(sharded).estimate(
            0.5, random_state=1, mode="exact"
        )
        theirs = StreamingEstimator(unsharded, random_state=5).estimate(
            0.5, random_state=1, mode="exact"
        )
        assert ours.value == theirs.value
