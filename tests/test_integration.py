"""End-to-end integration tests across subsystems.

These tests exercise the full pipeline the paper describes: generate a
corpus, build the extended LSH index, estimate the join size with every
estimator, and compare against the exact join oracle — i.e. a miniature
version of the benchmark experiments with assertions on the qualitative
behaviour the paper reports.
"""

import numpy as np
import pytest

from repro import (
    CrossSampling,
    ExperimentRunner,
    LSHIndex,
    LSHSEstimator,
    LSHSSEstimator,
    LatticeCountingEstimator,
    MedianEstimator,
    RandomPairSampling,
    UniformityEstimator,
    VirtualBucketEstimator,
    exact_join_size,
    make_dblp_like,
)
from repro.evaluation import empirical_stratum_probabilities, summarize_trials


@pytest.fixture(scope="module")
def pipeline(request):
    collection = request.getfixturevalue("small_collection")
    histogram = request.getfixturevalue("small_histogram")
    index = LSHIndex(collection, num_hashes=12, num_tables=3, random_state=101)
    return collection, histogram, index


ALL_THRESHOLDS = [0.1, 0.3, 0.5, 0.7, 0.9]


class TestFullPipeline:
    def test_every_estimator_produces_feasible_estimates(self, pipeline):
        collection, histogram, index = pipeline
        table = index.primary_table
        estimators = [
            RandomPairSampling(collection),
            CrossSampling(collection),
            UniformityEstimator(table),
            LSHSEstimator(table),
            LSHSSEstimator(table),
            LSHSSEstimator(table, dampening="auto"),
            LatticeCountingEstimator(table),
            MedianEstimator(index, lambda t: LSHSSEstimator(t)),
            VirtualBucketEstimator(index),
        ]
        for estimator in estimators:
            for threshold in ALL_THRESHOLDS:
                value = estimator.estimate(threshold, random_state=0).value
                assert 0.0 <= value <= collection.total_pairs, estimator.name

    def test_lsh_ss_tracks_truth_across_range(self, pipeline):
        """LSH-SS should be within an order of magnitude of the truth at every
        threshold (the paper's headline: reliable across the whole range)."""
        collection, histogram, index = pipeline
        estimator = LSHSSEstimator(index.primary_table)
        for threshold in ALL_THRESHOLDS:
            true_size = histogram.join_size(threshold)
            estimates = [
                estimator.estimate(threshold, random_state=seed).value for seed in range(10)
            ]
            mean_estimate = np.mean(estimates)
            assert mean_estimate <= 10 * max(true_size, 1)
            assert mean_estimate >= 0.02 * true_size

    def test_lsh_ss_never_wildly_overestimates_at_high_threshold(self, pipeline):
        collection, histogram, index = pipeline
        estimator = LSHSSEstimator(index.primary_table)
        true_size = histogram.join_size(0.9)
        for seed in range(20):
            assert estimator.estimate(0.9, random_state=seed).value <= 10 * max(true_size, 1)

    def test_random_sampling_fluctuates_at_high_threshold(self, pipeline):
        """The motivating failure mode (Example 1): RS estimates at τ=0.9 swing
        between 0 and huge scaled-up values."""
        collection, histogram, index = pipeline
        estimator = RandomPairSampling(collection)
        values = np.array(
            [estimator.estimate(0.9, random_state=seed).value for seed in range(30)]
        )
        true_size = histogram.join_size(0.9)
        assert np.any(values == 0.0)
        assert np.std(values) > np.std(
            [
                LSHSSEstimator(index.primary_table).estimate(0.9, random_state=seed).value
                for seed in range(30)
            ]
        )

    def test_stratum_probabilities_support_the_method(self, pipeline):
        """Table 1's qualitative claims on the synthetic corpus: P(T|H) stays
        usable at high thresholds while P(T) collapses."""
        collection, histogram, index = pipeline
        rows = empirical_stratum_probabilities(
            index.primary_table, [0.5, 0.9], histogram=histogram
        )
        for row in rows:
            assert row.probability_true_given_h > 10 * row.probability_true

    def test_experiment_runner_end_to_end(self, pipeline):
        collection, histogram, index = pipeline
        runner = ExperimentRunner(
            collection, thresholds=[0.5, 0.9], num_trials=3, histogram=histogram, random_state=1
        )
        records = runner.run(
            [LSHSSEstimator(index.primary_table), RandomPairSampling(collection)]
        )
        assert len(records) == 4
        summary = summarize_trials(records[0].estimates, records[0].true_size)
        assert summary.num_trials == 3

    def test_runtime_advantage_over_exact_join(self, pipeline):
        """Estimation must touch far fewer pairs than the exact join: the
        estimator examines O(n) pairs versus O(n²) for the oracle."""
        collection, histogram, index = pipeline
        estimator = LSHSSEstimator(index.primary_table)
        estimate = estimator.estimate(0.7, random_state=0)
        pairs_examined = (
            estimator.sample_size_h + estimate.details["samples_taken_l"]
        )
        assert pairs_examined <= 3 * collection.size
        assert collection.total_pairs > 50 * pairs_examined


class TestScaleConsistency:
    def test_larger_corpus_keeps_estimator_consistent(self):
        """Regenerate a slightly larger corpus and check LSH-SS stays in the
        right ballpark at a high threshold (guards against size-dependent
        scaling bugs in N_H / N_L bookkeeping)."""
        corpus = make_dblp_like(num_vectors=800, random_state=29)
        collection = corpus.collection
        index = LSHIndex(collection, num_hashes=15, random_state=31)
        true_size = exact_join_size(collection, 0.95)
        estimator = LSHSSEstimator(index.primary_table)
        estimates = [estimator.estimate(0.95, random_state=seed).value for seed in range(8)]
        assert np.mean(estimates) <= 10 * max(true_size, 1)
        if true_size > 0:
            assert np.mean(estimates) >= 0.05 * true_size
