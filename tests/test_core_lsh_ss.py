"""Tests for LSH-SS (Algorithm 1), the paper's main estimator."""

import math

import numpy as np
import pytest

from repro.core import LSHSSEstimator
from repro.core.lsh_ss import (
    default_answer_threshold,
    default_sample_size,
    sample_stratum_h,
    sample_stratum_l,
)
from repro.errors import ValidationError
from repro.join import exact_join_size
from repro.lsh import LSHTable, SignRandomProjectionFamily
from repro.rng import ensure_rng
from repro.vectors import VectorCollection


class TestDefaults:
    def test_default_sample_size(self):
        assert default_sample_size(400) == 400

    def test_default_answer_threshold_is_log2_n(self):
        assert default_answer_threshold(1024) == 10
        assert default_answer_threshold(400) == round(math.log2(400))
        assert default_answer_threshold(2) >= 1


class TestStratumHelpers:
    def _make_pair_source(self, pairs):
        pairs = np.asarray(pairs)

        def source(size, rng):
            positions = rng.integers(0, pairs.shape[0], size=size)
            return pairs[positions, 0], pairs[positions, 1]

        return source

    def test_sample_stratum_h_scales_up(self):
        # population: 100 pairs of which 25 are true
        pairs = np.array([[i, i] for i in range(100)])
        similarities = np.where(np.arange(100) < 25, 0.9, 0.1)

        def evaluator(left, _right):
            return similarities[left]

        result = sample_stratum_h(
            stratum_size=100,
            pair_source=self._make_pair_source(pairs),
            similarity_evaluator=evaluator,
            threshold=0.5,
            sample_size=5000,
            rng=ensure_rng(0),
        )
        assert result.estimate == pytest.approx(25, rel=0.15)
        assert result.stratum_size == 100

    def test_sample_stratum_h_empty_stratum(self):
        result = sample_stratum_h(0, None, None, 0.5, 100, ensure_rng(0))
        assert result.estimate == 0.0
        assert result.sample_size == 0

    def test_sample_stratum_h_invalid_sample_size(self):
        with pytest.raises(ValidationError):
            sample_stratum_h(10, self._make_pair_source([[0, 0]]), lambda a, b: a, 0.5, 0, ensure_rng(0))

    def test_sample_stratum_l_reliable_path(self):
        pairs = np.array([[i, i] for i in range(1000)])
        similarities = np.where(np.arange(1000) < 100, 0.9, 0.1)

        def evaluator(left, _right):
            return similarities[left]

        result = sample_stratum_l(
            stratum_size=1000,
            pair_source=self._make_pair_source(pairs),
            similarity_evaluator=evaluator,
            threshold=0.5,
            answer_threshold=10,
            max_samples=5000,
            dampening=None,
            rng=ensure_rng(1),
        )
        assert result.reached_answer_threshold
        assert result.estimate == pytest.approx(100, rel=0.7)

    def test_sample_stratum_l_safe_lower_bound(self):
        pairs = np.array([[i, i] for i in range(1000)])
        similarities = np.full(1000, 0.1)

        def evaluator(left, _right):
            return similarities[left]

        result = sample_stratum_l(
            stratum_size=10**9,
            pair_source=self._make_pair_source(pairs),
            similarity_evaluator=evaluator,
            threshold=0.5,
            answer_threshold=5,
            max_samples=200,
            dampening=None,
            rng=ensure_rng(1),
        )
        assert not result.reached_answer_threshold
        assert result.estimate == result.true_in_sample == 0

    def test_sample_stratum_l_auto_dampening(self):
        pairs = np.array([[i, i] for i in range(1000)])
        similarities = np.where(np.arange(1000) < 5, 0.9, 0.1)  # 0.5% true

        def evaluator(left, _right):
            return similarities[left]

        result = sample_stratum_l(
            stratum_size=1_000_000,
            pair_source=self._make_pair_source(pairs),
            similarity_evaluator=evaluator,
            threshold=0.5,
            answer_threshold=50,
            max_samples=400,
            dampening="auto",
            rng=ensure_rng(3),
        )
        if not result.reached_answer_threshold and result.true_in_sample > 0:
            assert result.dampening_used == pytest.approx(result.true_in_sample / 50)
            assert result.estimate > result.true_in_sample

    def test_sample_stratum_l_empty_stratum(self):
        result = sample_stratum_l(0, None, None, 0.5, 5, 100, None, ensure_rng(0))
        assert result.estimate == 0.0


class TestLSHSSEstimator:
    def test_default_parameters_follow_paper(self, small_table, small_collection):
        estimator = LSHSSEstimator(small_table)
        n = small_collection.size
        assert estimator.sample_size_h == n
        assert estimator.sample_size_l == n
        assert estimator.answer_threshold == default_answer_threshold(n)
        assert estimator.name == "LSH-SS"

    def test_dampened_variant_renamed(self, small_table):
        assert LSHSSEstimator(small_table, dampening="auto").name == "LSH-SS(D)"
        assert LSHSSEstimator(small_table, dampening=0.5).name == "LSH-SS(D)"

    def test_invalid_parameters(self, small_table):
        with pytest.raises(ValidationError):
            LSHSSEstimator(small_table, sample_size_h=0)
        with pytest.raises(ValidationError):
            LSHSSEstimator(small_table, answer_threshold=0)
        with pytest.raises(ValidationError):
            LSHSSEstimator(small_table, dampening=1.5)

    def test_estimate_in_feasible_range(self, small_table):
        estimator = LSHSSEstimator(small_table)
        for threshold in (0.1, 0.5, 0.9):
            value = estimator.estimate(threshold, random_state=0).value
            assert 0.0 <= value <= small_table.total_pairs

    def test_estimate_is_sum_of_strata(self, small_table):
        estimate = LSHSSEstimator(small_table).estimate(0.6, random_state=4)
        assert estimate.value == pytest.approx(
            estimate.details["stratum_h"] + estimate.details["stratum_l"]
        )

    def test_details_structure(self, small_table):
        details = LSHSSEstimator(small_table).estimate(0.5, random_state=0).details
        for key in (
            "stratum_h",
            "stratum_l",
            "true_in_sample_h",
            "true_in_sample_l",
            "samples_taken_l",
            "reached_answer_threshold",
            "num_collision_pairs",
            "num_non_collision_pairs",
        ):
            assert key in details

    def test_deterministic_given_seed(self, small_table):
        estimator = LSHSSEstimator(small_table)
        assert (
            estimator.estimate(0.7, random_state=11).value
            == estimator.estimate(0.7, random_state=11).value
        )

    def test_low_threshold_accuracy(self, small_table, small_histogram):
        """Theorem 3 regime: with β ≥ log n / n the estimate is within a small
        relative error on average."""
        threshold = 0.1
        true_size = small_histogram.join_size(threshold)
        estimator = LSHSSEstimator(small_table)
        estimates = [estimator.estimate(threshold, random_state=s).value for s in range(15)]
        assert np.mean(estimates) == pytest.approx(true_size, rel=0.35)

    def test_high_threshold_no_wild_overestimation(self, small_table, small_histogram):
        """Theorem 1 regime: LSH-SS should essentially never produce the huge
        overestimates random sampling produces at τ = 0.9."""
        threshold = 0.9
        true_size = small_histogram.join_size(threshold)
        estimator = LSHSSEstimator(small_table)
        estimates = np.array(
            [estimator.estimate(threshold, random_state=s).value for s in range(25)]
        )
        assert np.all(estimates <= 10 * max(true_size, 1))

    def test_variance_smaller_than_random_sampling_at_high_threshold(
        self, small_table, small_collection
    ):
        from repro.core import RandomPairSampling

        threshold = 0.9
        lsh_ss = LSHSSEstimator(small_table)
        random_sampling = RandomPairSampling(small_collection)
        lsh_values = [lsh_ss.estimate(threshold, random_state=s).value for s in range(20)]
        rs_values = [random_sampling.estimate(threshold, random_state=s).value for s in range(20)]
        assert np.std(lsh_values) < np.std(rs_values)

    def test_dampening_never_decreases_estimate(self, small_table):
        plain = LSHSSEstimator(small_table)
        dampened = LSHSSEstimator(small_table, dampening="auto")
        for seed in range(5):
            assert (
                dampened.estimate(0.6, random_state=seed).value
                >= plain.estimate(0.6, random_state=seed).value - 1e-9
            )

    def test_duplicate_heavy_collection_exact_duplicates_found(self):
        """A collection dominated by exact duplicates: stratum H carries the
        whole join and the estimate lands close to the truth."""
        rows = [[1.0, 0.0, 0.0, 0.0]] * 12 + [[0.0, 1.0, 0.0, 0.0]] * 8
        rng = np.random.default_rng(0)
        rows += [rng.standard_normal(4).tolist() for _ in range(80)]
        collection = VectorCollection.from_dense(rows)
        table = LSHTable(SignRandomProjectionFamily(12, random_state=5), collection)
        true_size = exact_join_size(collection, 0.99)
        estimator = LSHSSEstimator(table)
        estimates = [estimator.estimate(0.99, random_state=s).value for s in range(10)]
        assert np.mean(estimates) == pytest.approx(true_size, rel=0.35)
