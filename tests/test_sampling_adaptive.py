"""Tests for Lipton-style adaptive sampling (the SampleL subroutine)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.sampling import AdaptiveSampleResult, adaptive_sample


def make_source(population_similarities: np.ndarray):
    """Pair source drawing uniformly from a fixed population of similarities."""

    def source(batch_size, rng):
        indices = rng.integers(0, population_similarities.size, size=batch_size)
        return indices, indices  # left == right index into the population

    def evaluator(left, _right):
        return population_similarities[left]

    return source, evaluator


class TestAdaptiveSample:
    def test_terminates_by_answer_threshold_when_true_pairs_common(self):
        population = np.concatenate([np.full(500, 0.9), np.full(500, 0.1)])
        source, evaluator = make_source(population)
        result = adaptive_sample(
            source, evaluator, 0.5, answer_threshold=10, max_samples=10_000, random_state=0
        )
        assert result.reached_answer_threshold
        assert result.true_count == 10
        assert result.samples_taken <= 10_000

    def test_exact_sample_index_of_delta_th_true_pair(self):
        # deterministic population: every 2nd pair is true -> the 5th true pair
        # is found at sample index ~10 (within one batch, order is random but
        # the count at termination must be exactly delta).
        population = np.array([0.9, 0.1] * 50)
        source, evaluator = make_source(population)
        result = adaptive_sample(
            source, evaluator, 0.5, answer_threshold=5, max_samples=1000, random_state=1
        )
        assert result.true_count == 5
        assert result.samples_taken >= 5

    def test_budget_exhausted_returns_partial_count(self):
        population = np.full(1000, 0.1)  # no true pairs at threshold 0.5
        source, evaluator = make_source(population)
        result = adaptive_sample(
            source, evaluator, 0.5, answer_threshold=5, max_samples=200, random_state=0
        )
        assert not result.reached_answer_threshold
        assert result.true_count == 0
        assert result.samples_taken == 200

    def test_scaled_estimate_when_reliable(self):
        population = np.concatenate([np.full(100, 0.9), np.full(900, 0.1)])
        source, evaluator = make_source(population)
        result = adaptive_sample(
            source, evaluator, 0.5, answer_threshold=20, max_samples=50_000, random_state=3
        )
        assert result.reached_answer_threshold
        estimate = result.estimate(population_size=1_000_000)
        # true fraction is 10%, so the estimate should be near 100_000
        assert estimate == pytest.approx(100_000, rel=0.5)

    def test_safe_lower_bound_when_unreliable(self):
        population = np.concatenate([np.full(2, 0.9), np.full(9998, 0.1)])
        source, evaluator = make_source(population)
        result = adaptive_sample(
            source, evaluator, 0.5, answer_threshold=50, max_samples=300, random_state=0
        )
        assert not result.reached_answer_threshold
        estimate = result.estimate(population_size=10**9)
        assert estimate == result.true_count  # not scaled up

    def test_dampened_estimate(self):
        result = AdaptiveSampleResult(
            true_count=4,
            samples_taken=1000,
            reached_answer_threshold=False,
            answer_threshold=10,
            max_samples=1000,
        )
        plain = result.estimate(1_000_000)
        dampened = result.estimate(1_000_000, dampening=0.5)
        assert plain == 4
        assert dampened == pytest.approx(4 * 0.5 * 1_000_000 / 1000)

    def test_dampening_out_of_range(self):
        result = AdaptiveSampleResult(
            true_count=1,
            samples_taken=10,
            reached_answer_threshold=False,
            answer_threshold=5,
            max_samples=10,
        )
        with pytest.raises(ValidationError):
            result.estimate(100, dampening=1.5)

    def test_dampening_ignored_when_reliable(self):
        result = AdaptiveSampleResult(
            true_count=10,
            samples_taken=100,
            reached_answer_threshold=True,
            answer_threshold=10,
            max_samples=1000,
        )
        assert result.estimate(10_000, dampening=0.1) == pytest.approx(1000.0)

    def test_invalid_parameters(self):
        source, evaluator = make_source(np.full(10, 0.5))
        with pytest.raises(ValidationError):
            adaptive_sample(source, evaluator, 0.5, answer_threshold=0, max_samples=10)
        with pytest.raises(ValidationError):
            adaptive_sample(source, evaluator, 0.5, answer_threshold=1, max_samples=0)

    def test_samples_never_exceed_budget(self):
        population = np.full(100, 0.1)
        source, evaluator = make_source(population)
        result = adaptive_sample(
            source, evaluator, 0.5, answer_threshold=3, max_samples=77, random_state=0,
            batch_size=10,
        )
        assert result.samples_taken == 77

    def test_estimator_unbiased_over_repeats(self):
        """Scaled-up adaptive estimates average out near the true count."""
        population = np.concatenate([np.full(50, 0.95), np.full(950, 0.05)])
        source, evaluator = make_source(population)
        population_size = 1000
        estimates = []
        for seed in range(40):
            result = adaptive_sample(
                source,
                evaluator,
                0.5,
                answer_threshold=5,
                max_samples=2000,
                random_state=seed,
            )
            estimates.append(result.estimate(population_size))
        assert np.mean(estimates) == pytest.approx(50, rel=0.35)
