"""Tests for the closed-form LSH collision analysis (Appendix A.1, §B.1)."""

import numpy as np
import pytest

from repro.core.analysis import (
    collision_joint_probabilities,
    conditional_collision_probabilities,
    empirical_precision,
    estimate_from_conditionals,
    optimal_num_hashes,
    transform_similarities,
    transform_threshold,
    uniformity_estimate,
)
from repro.errors import ValidationError


class TestTransform:
    def test_ideal_model_is_identity(self):
        assert transform_threshold(0.37, "ideal") == pytest.approx(0.37)

    def test_angular_model_matches_charikar(self):
        assert transform_threshold(1.0, "angular") == pytest.approx(1.0)
        assert transform_threshold(0.5, "angular") == pytest.approx(1.0 - np.arccos(0.5) / np.pi)

    def test_invalid_model(self):
        with pytest.raises(ValidationError):
            transform_threshold(0.5, "weird")

    def test_invalid_threshold(self):
        with pytest.raises(ValidationError):
            transform_threshold(0.0)

    def test_transform_similarities_vectorised(self):
        values = np.array([0.1, 0.5, 0.9])
        ideal = transform_similarities(values, "ideal")
        angular = transform_similarities(values, "angular")
        np.testing.assert_allclose(ideal, values)
        # the angular transform is monotone and stays within [0, 1]
        assert np.all(np.diff(angular) > 0)
        assert np.all((angular >= 0.0) & (angular <= 1.0))
        assert angular[0] > ideal[0]  # low cosines are lifted toward 0.5


class TestJointProbabilities:
    def test_areas_sum_to_one(self):
        for tau in (0.1, 0.5, 0.9):
            for k in (1, 5, 20):
                joint = collision_joint_probabilities(tau, k)
                total = (
                    joint.same_bucket_false
                    + joint.same_bucket_true
                    + joint.different_bucket_false
                    + joint.different_bucket_true
                )
                assert total == pytest.approx(1.0)

    def test_closed_forms_match_numeric_integrals(self):
        tau, k = 0.6, 7
        joint = collision_joint_probabilities(tau, k)
        grid = np.linspace(0, 1, 200001)
        f = grid**k
        below = grid <= tau
        assert joint.same_bucket_false == pytest.approx(np.trapezoid(f[below], grid[below]), abs=1e-4)
        assert joint.same_bucket_true == pytest.approx(
            np.trapezoid(f[~below], grid[~below]), abs=1e-4
        )

    def test_true_collision_area_shrinks_with_k(self):
        small_k = collision_joint_probabilities(0.7, 2).same_bucket_true
        large_k = collision_joint_probabilities(0.7, 30).same_bucket_true
        assert large_k < small_k

    def test_as_dict_keys(self):
        joint = collision_joint_probabilities(0.5, 3)
        assert set(joint.as_dict()) == {"P(H∩F)", "P(H∩T)", "P(L∩F)", "P(L∩T)"}

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            collision_joint_probabilities(0.0, 5)
        with pytest.raises(ValidationError):
            collision_joint_probabilities(0.5, 0)


class TestConditionalProbabilities:
    def test_equation_8_and_9(self):
        tau, k = 0.4, 6
        conditional = conditional_collision_probabilities(tau, k)
        expected_h_given_t = sum(tau**i for i in range(k + 1)) / (k + 1)
        expected_h_given_f = tau**k / (k + 1)
        assert conditional["P(H|T)"] == pytest.approx(expected_h_given_t)
        assert conditional["P(H|F)"] == pytest.approx(expected_h_given_f)

    def test_h_given_t_exceeds_h_given_f(self):
        for tau in (0.1, 0.5, 0.9):
            conditional = conditional_collision_probabilities(tau, 10)
            assert conditional["P(H|T)"] > conditional["P(H|F)"]

    def test_consistency_with_joint_probabilities(self):
        tau, k = 0.3, 8
        joint = collision_joint_probabilities(tau, k)
        conditional = conditional_collision_probabilities(tau, k)
        assert conditional["P(H|T)"] == pytest.approx(joint.same_bucket_true / (1.0 - tau))
        assert conditional["P(H|F)"] == pytest.approx(joint.same_bucket_false / tau)


class TestEstimators:
    def test_equation_1_recovers_planted_value(self):
        # If NH is generated from the model, inverting Eq. (1) recovers NT.
        tau, k, total = 0.6, 5, 1_000_000
        true_join = 1234
        conditional = conditional_collision_probabilities(tau, k)
        collisions = (
            true_join * conditional["P(H|T)"] + (total - true_join) * conditional["P(H|F)"]
        )
        recovered = estimate_from_conditionals(
            collisions, total, conditional["P(H|T)"], conditional["P(H|F)"]
        )
        assert recovered == pytest.approx(true_join, rel=1e-9)

    def test_equation_4_equals_equation_1_with_uniform_conditionals(self):
        tau, k, total, collisions = 0.45, 9, 500_000, 321.0
        conditional = conditional_collision_probabilities(tau, k)
        via_eq1 = estimate_from_conditionals(
            collisions, total, conditional["P(H|T)"], conditional["P(H|F)"]
        )
        via_eq4 = uniformity_estimate(collisions, total, tau, k)
        assert via_eq1 == pytest.approx(via_eq4, rel=1e-9)

    def test_uniformity_estimate_clamped(self):
        assert uniformity_estimate(0.0, 100, 0.9, 10) == 0.0
        assert uniformity_estimate(1e9, 100, 0.9, 10) == 100.0

    def test_degenerate_denominator_returns_zero(self):
        assert estimate_from_conditionals(10, 100, 0.2, 0.2) == 0.0

    def test_negative_counts_rejected(self):
        with pytest.raises(ValidationError):
            estimate_from_conditionals(-1, 100, 0.5, 0.1)


class TestOptimalK:
    def test_precision_increases_with_k(self):
        similarities = np.concatenate([np.full(1000, 0.2), np.full(10, 0.95)])
        precisions = [empirical_precision(similarities, 0.8, k) for k in (1, 5, 20, 40)]
        assert all(a <= b + 1e-12 for a, b in zip(precisions, precisions[1:]))

    def test_optimal_k_is_minimal(self):
        similarities = np.concatenate([np.full(1000, 0.2), np.full(10, 0.95)])
        k = optimal_num_hashes(similarities, 0.8, target_precision=0.5)
        assert k is not None
        assert empirical_precision(similarities, 0.8, k) >= 0.5
        if k > 1:
            assert empirical_precision(similarities, 0.8, k - 1) < 0.5

    def test_no_feasible_k_returns_none(self):
        similarities = np.full(100, 0.2)  # no true pairs at 0.8
        assert optimal_num_hashes(similarities, 0.8, target_precision=0.5, max_hashes=16) is None

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            optimal_num_hashes([0.5], 0.5, target_precision=0.0)
        with pytest.raises(ValidationError):
            optimal_num_hashes([0.5], 0.5, max_hashes=0)
        with pytest.raises(ValidationError):
            empirical_precision(np.array([]), 0.5, 3)
