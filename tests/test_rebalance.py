"""Tests for online shard rebalancing (repro.shard.rebalance + partitioners)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StrandedWritesError, ValidationError
from repro.shard import (
    KeyMove,
    KeyPartitioner,
    RebalancePlan,
    RendezvousPartitioner,
    ShardedMutableIndex,
    ShardedStreamingEstimator,
    ShardRouter,
    apply_plan,
    plan_rebalance,
    rebalance_cluster,
    resolve_partitioner,
)
from repro.shard.partition import (
    key_signature_matrix,
    partitioner_from_state,
    partitioner_state,
)
from repro.shard.rebalance import split_index_state, splice_index_state
from repro.streaming import (
    ChangeLog,
    Delete,
    Insert,
    MutableLSHIndex,
    StreamingEstimator,
)
from repro.vectors import VectorCollection

SEED = 19
NUM_HASHES = 10


def _build_pair(collection, churn_log, *, num_shards, partitioner="rendezvous",
                shard_estimators=True, estimator_kwargs=None):
    """(unsharded reference estimator, sharded cluster) over the same log."""
    log = churn_log
    unsharded = MutableLSHIndex(
        collection.dimension, num_hashes=NUM_HASHES, random_state=SEED
    )
    log.replay(unsharded)
    reference = StreamingEstimator(unsharded, random_state=0)
    sharded = ShardedMutableIndex(
        collection.dimension,
        num_shards=num_shards,
        num_hashes=NUM_HASHES,
        random_state=SEED,
        partitioner=partitioner,
        shard_estimators=shard_estimators,
        estimator_kwargs=estimator_kwargs,
    )
    with ShardRouter(sharded, batch_size=64) as router:
        router.replay(log)
    return reference, sharded


def _assert_matches_reference(sharded, reference, *, seeds=(11, 99)):
    sharded.check_invariants()
    unsharded = reference.index
    assert sharded.size == unsharded.size
    assert sharded.num_collision_pairs == unsharded.num_collision_pairs
    assert sharded.num_non_collision_pairs == unsharded.num_non_collision_pairs
    estimator = ShardedStreamingEstimator(sharded)
    for seed in seeds:
        ours = estimator.estimate(0.7, random_state=seed, mode="exact")
        theirs = reference.estimate(0.7, random_state=seed, mode="exact")
        assert ours.value == theirs.value


class TestRendezvousPartitioner:
    def test_validation(self):
        with pytest.raises(ValidationError):
            RendezvousPartitioner(0)

    def test_single_shard_is_constant(self):
        assert RendezvousPartitioner(1)(b"\x01" * 16) == 0

    def test_key_and_signature_paths_agree(self):
        partitioner = RendezvousPartitioner(7)
        rng = np.random.default_rng(0)
        signatures = rng.integers(-4, 4, size=(60, 12)).astype(np.int64)
        batch = partitioner.shard_of_signatures(signatures)
        for position in range(signatures.shape[0]):
            key = np.ascontiguousarray(signatures[position]).tobytes()
            assert partitioner.shard_of(key) == batch[position]

    def test_deterministic_and_spread(self):
        partitioner = RendezvousPartitioner(4)
        rng = np.random.default_rng(1)
        signatures = rng.integers(0, 2, size=(2000, 16)).astype(np.int64)
        first = partitioner.shard_of_signatures(signatures)
        np.testing.assert_array_equal(
            first, partitioner.shard_of_signatures(signatures)
        )
        counts = np.bincount(first, minlength=4)
        assert counts.min() > 0.15 * signatures.shape[0]

    @pytest.mark.parametrize("num_shards", [2, 4, 8])
    def test_resize_moves_minimal_fraction(self, num_shards):
        """Growing S → S+1 relocates ~1/(S+1) of keys, all onto the new shard."""
        rng = np.random.default_rng(3)
        signatures = rng.integers(-8, 8, size=(20000, 12)).astype(np.int64)
        old = RendezvousPartitioner(num_shards).shard_of_signatures(signatures)
        new = RendezvousPartitioner(num_shards).with_num_shards(
            num_shards + 1
        ).shard_of_signatures(signatures)
        moved = old != new
        assert np.mean(moved) <= 1.5 / (num_shards + 1)
        assert np.all(new[moved] == num_shards)  # only arrivals at the new shard

    def test_state_round_trip_and_equality(self):
        for partitioner in (RendezvousPartitioner(5), KeyPartitioner(3)):
            revived = partitioner_from_state(partitioner_state(partitioner))
            assert revived == partitioner
        assert RendezvousPartitioner(3) != KeyPartitioner(3)

    def test_resolve_partitioner(self):
        assert resolve_partitioner("rendezvous", 3) == RendezvousPartitioner(3)
        assert resolve_partitioner("modulo", 2) == KeyPartitioner(2)
        assert resolve_partitioner(KeyPartitioner, 4) == KeyPartitioner(4)
        with pytest.raises(ValidationError):
            resolve_partitioner("fibonacci", 2)
        with pytest.raises(ValidationError):
            resolve_partitioner(KeyPartitioner(2), 3)  # instance must match S

    def test_key_signature_matrix_round_trip(self):
        rng = np.random.default_rng(9)
        signatures = rng.integers(-4, 4, size=(25, 6)).astype(np.int64)
        keys = [np.ascontiguousarray(row).tobytes() for row in signatures]
        np.testing.assert_array_equal(key_signature_matrix(keys, 6), signatures)
        assert key_signature_matrix([], 6).shape == (0, 6)
        with pytest.raises(ValidationError):
            key_signature_matrix(keys, 5)


class TestSplitSplice:
    """State-level key-range extraction on the snapshot substrate."""

    def _index(self, small_collection):
        index = MutableLSHIndex.from_collection(
            small_collection, num_hashes=NUM_HASHES, num_tables=2, random_state=SEED
        )
        for row in range(10):  # duplicates: multi-member buckets exist
            index.insert(small_collection.row(row))
        return index

    def test_split_then_splice_is_lossless(self, small_collection):
        index = self._index(small_collection)
        state = index.to_state()
        primary_keys = [key for key, _ in state["tables"][0]]
        moved_keys = set(primary_keys[::3])
        remaining, payload = split_index_state(state, moved_keys)
        # the two sides partition the vectors
        assert set(remaining["live_ids"]).isdisjoint(payload["ids"])
        assert sorted(remaining["live_ids"] + payload["ids"]) == sorted(
            state["live_ids"]
        )
        # moved collision pairs counted exactly
        sizes = [len(m) for k, m in state["tables"][0] if k in moved_keys]
        assert payload["collision_pairs"] == sum(s * (s - 1) // 2 for s in sizes)
        # splicing into an empty shard of the same cluster shape works
        empty = MutableLSHIndex(
            small_collection.dimension,
            num_hashes=NUM_HASHES,
            num_tables=2,
            families=index.families,
        ).to_state()
        target = MutableLSHIndex.from_state(splice_index_state(empty, payload))
        source = MutableLSHIndex.from_state(remaining)
        target.check_invariants()
        source.check_invariants()
        assert source.size + target.size == index.size
        assert (
            source.num_collision_pairs + target.num_collision_pairs
            == index.num_collision_pairs
        )
        # migrated rows are bit-identical
        moved = np.asarray(payload["ids"], dtype=np.int64)
        np.testing.assert_array_equal(
            target.cosine_pairs(moved, moved), index.cosine_pairs(moved, moved)
        )

    def test_split_unknown_key_rejected(self, small_collection):
        state = self._index(small_collection).to_state()
        absent = np.full(NUM_HASHES, 12345, dtype=np.int64).tobytes()
        with pytest.raises(ValidationError):
            split_index_state(state, [absent])

    def test_splice_duplicate_ids_rejected(self, small_collection):
        index = self._index(small_collection)
        state = index.to_state()
        keys = [key for key, _ in state["tables"][0]][:2]
        _, payload = split_index_state(state, keys)
        with pytest.raises(ValidationError):
            splice_index_state(state, payload)  # ids still live in the source

    def test_splice_straddling_bucket_rejected(self, small_collection):
        index = self._index(small_collection)
        state = index.to_state()
        keys = [key for key, _ in state["tables"][0]][:1]
        remaining, payload = split_index_state(state, keys)
        spliced = splice_index_state(remaining, payload)
        with pytest.raises(ValidationError):
            # same bucket key arriving twice must be refused
            shifted = dict(payload, ids=[i + 10 ** 5 for i in payload["ids"]])
            splice_index_state(spliced, shifted)


class TestRebalance:
    def test_grow_keeps_exact_estimates_bit_identical(self, small_collection, churn_log_factory):
        reference, sharded = _build_pair(small_collection, churn_log_factory(small_collection, 400), num_shards=2)
        plan = rebalance_cluster(sharded, num_shards=3)
        assert sharded.num_shards == 3
        assert plan.moved_fraction <= 1.5 / 3
        assert plan.moved_vectors > 0
        _assert_matches_reference(sharded, reference)

    def test_shrink_keeps_exact_estimates_bit_identical(self, small_collection, churn_log_factory):
        reference, sharded = _build_pair(small_collection, churn_log_factory(small_collection, 400), num_shards=3)
        rebalance_cluster(sharded, num_shards=2)
        assert sharded.num_shards == 2
        assert len(sharded.shards) == 2
        _assert_matches_reference(sharded, reference)

    def test_partitioner_switch_keeps_exact_estimates(self, small_collection, churn_log_factory):
        reference, sharded = _build_pair(
            small_collection, churn_log_factory(small_collection, 400),
            num_shards=4, partitioner="modulo"
        )
        plan = rebalance_cluster(sharded, partitioner="rendezvous")
        assert sharded.partitioner == RendezvousPartitioner(4)
        assert plan.moved_keys > 0  # a kind switch reshuffles
        _assert_matches_reference(sharded, reference)

    def test_snapshot_partitioner_kind_round_trips(self, small_collection, churn_log_factory, tmp_path):
        _, sharded = _build_pair(small_collection, churn_log_factory(small_collection, 400), num_shards=2)
        path = tmp_path / "cluster.pkl"
        sharded.snapshot(path)
        revived = ShardedMutableIndex.restore(path)
        assert revived.partitioner == sharded.partitioner
        assert revived.partitioner.kind == "rendezvous"

    def test_inserts_after_rebalance_follow_new_owners(self, small_collection, churn_log_factory):
        reference, sharded = _build_pair(small_collection, churn_log_factory(small_collection, 400), num_shards=2)
        rebalance_cluster(sharded, num_shards=3)
        # duplicates of already-indexed vectors land in existing (possibly
        # migrated) buckets — both write paths must hit the owning shard
        for row in range(20):
            sharded.insert(small_collection.row(row))
            reference.index.insert(small_collection.row(row))
        sharded.insert_many(small_collection.matrix[:15])
        reference.index.insert_many(small_collection.matrix[:15])
        _assert_matches_reference(sharded, reference)

    def test_empty_cluster_rebalance(self):
        sharded = ShardedMutableIndex(
            4, num_shards=2, num_hashes=4, random_state=0, partitioner="rendezvous"
        )
        plan = rebalance_cluster(sharded, num_shards=3)
        assert plan.moved_keys == 0 and plan.total_keys == 0
        assert sharded.num_shards == 3
        sharded.check_invariants()

    def test_noop_rebalance(self, small_collection, churn_log_factory):
        reference, sharded = _build_pair(small_collection, churn_log_factory(small_collection, 400), num_shards=2)
        plan = rebalance_cluster(sharded)
        assert plan.moved_keys == 0
        _assert_matches_reference(sharded, reference)

    def test_manual_plan_migrates_chosen_keys(self, small_collection, churn_log_factory):
        """A hand-built plan (partitioner=None) performs a raw key-range
        migration; the facade keeps routing to the new owners."""
        reference, sharded = _build_pair(small_collection, churn_log_factory(small_collection, 400), num_shards=2)
        keys = [
            key for key, (count, shard_id) in sharded._bucket_refs.items()
            if shard_id == 0
        ][:5]
        plan = RebalancePlan(
            moves=[KeyMove(key, 0, 1) for key in keys],
            total_keys=len(sharded._bucket_refs),
        )
        apply_plan(sharded, plan)
        for key in keys:
            assert sharded._bucket_refs[key][1] == 1
        _assert_matches_reference(sharded, reference)

    def test_stale_plan_rejected(self, small_collection, churn_log_factory):
        _, sharded = _build_pair(small_collection, churn_log_factory(small_collection, 400), num_shards=2)
        key = next(iter(sharded._bucket_refs))
        owner = sharded._bucket_refs[key][1]
        bad_source = RebalancePlan(
            moves=[KeyMove(key, 1 - owner, owner)], total_keys=1
        )
        with pytest.raises(ValidationError):
            apply_plan(sharded, bad_source)
        with pytest.raises(ValidationError):
            apply_plan(
                sharded, RebalancePlan(moves=[KeyMove(key, owner, 9)], total_keys=1)
            )
        with pytest.raises(ValidationError):
            apply_plan(
                sharded, RebalancePlan(moves=[KeyMove(b"nope", 0, 1)], total_keys=1)
            )

    def test_shrink_with_occupied_trailing_shard_rejected(self, small_collection, churn_log_factory):
        _, sharded = _build_pair(small_collection, churn_log_factory(small_collection, 400), num_shards=3)
        with pytest.raises(ValidationError):
            sharded.drop_trailing_shards(2)  # nothing migrated away yet

    def test_plan_requires_grown_cluster(self, small_collection, churn_log_factory):
        _, sharded = _build_pair(small_collection, churn_log_factory(small_collection, 400), num_shards=2)
        with pytest.raises(ValidationError):
            plan_rebalance(sharded, RendezvousPartitioner(5))


class TestEstimatorMigration:
    """Per-shard reservoirs survive a migration repaired, not redrawn."""

    def test_reservoirs_stay_valid_after_rebalance(self, small_collection, churn_log_factory):
        _, sharded = _build_pair(
            small_collection,
            churn_log_factory(small_collection, 400),
            num_shards=2,
            estimator_kwargs={"reservoir_size": 128},
        )
        rebalance_cluster(sharded, num_shards=3)
        for shard in sharded.shards:
            estimator = shard.estimator
            assert estimator is not None
            assert estimator.index is shard.index  # rebound to the new index
            table = shard.index.primary_table
            for stratum, colliding in (("h", True), ("l", False)):
                left, right = estimator.reservoir_pairs(stratum)
                for u, v in zip(left, right):
                    # every surviving pair lives wholly inside this shard
                    # and still belongs to its stratum
                    assert int(u) in shard.index and int(v) in shard.index
                    assert table.same_bucket(int(u), int(v)) == colliding

    def test_merged_mode_still_serves_after_rebalance(self, small_collection, churn_log_factory):
        _, sharded = _build_pair(
            small_collection,
            churn_log_factory(small_collection, 400),
            num_shards=2,
            estimator_kwargs={"reservoir_size": 256},
        )
        estimator = ShardedStreamingEstimator(sharded)
        before = np.median(
            [estimator.estimate(0.5, random_state=s, mode="exact").value
             for s in range(9)]
        )
        rebalance_cluster(sharded, num_shards=3)
        for shard in sharded.shards:
            shard.estimator.refresh()
        merged = np.median(
            [estimator.estimate(0.5, random_state=s, mode="merged").value
             for s in range(9)]
        )
        assert merged == pytest.approx(before, rel=0.5)

    def test_sharded_restore_preserves_merged_estimates(self, small_collection, churn_log_factory, tmp_path):
        """The PR-2 bug: restores used to redraw every reservoir.  Now the
        merged (reservoir-pooling) estimate replays bit-identically."""
        _, sharded = _build_pair(
            small_collection, churn_log_factory(small_collection, 400),
            num_shards=3, estimator_kwargs={"reservoir_size": 64}
        )
        path = tmp_path / "cluster.pkl"
        sharded.snapshot(path)
        revived = ShardedMutableIndex.restore(path)
        original = ShardedStreamingEstimator(sharded)
        restored = ShardedStreamingEstimator(revived)
        for seed in (1, 42):
            for mode in ("merged", "exact"):
                ours = restored.estimate(0.7, random_state=seed, mode=mode)
                theirs = original.estimate(0.7, random_state=seed, mode=mode)
                assert ours.value == theirs.value, (seed, mode)

    def test_legacy_snapshot_without_estimators_restores(self, small_collection, churn_log_factory):
        """Pre-rebalance snapshots (no partitioner / estimator states) load."""
        _, sharded = _build_pair(small_collection, churn_log_factory(small_collection, 400), num_shards=2, partitioner="modulo")
        state = sharded.to_state()
        state.pop("partitioner")
        state.pop("estimators", None)
        for shard_state in state["shards"]:
            shard_state.pop("estimators", None)
        revived = ShardedMutableIndex.from_state(state, estimator_seed=7)
        revived.check_invariants()
        assert revived.partitioner == KeyPartitioner(2)
        assert all(shard.estimator is not None for shard in revived.shards)


class TestMigrationPropertyBased:
    """Acceptance property (b): for arbitrary event sequences, migrating a
    cluster (grow by one shard, then shrink back) leaves exact-mode
    estimates bit-identical to an unsharded estimator, at S ∈ {2, 3}."""

    POOL_SEED = 78

    @staticmethod
    def _pool() -> VectorCollection:
        rng = np.random.default_rng(TestMigrationPropertyBased.POOL_SEED)
        dense = (rng.random((30, 8)) < 0.4) * rng.random((30, 8))
        dense[0] = dense[1]  # guarantee at least one colliding pair
        dense[dense.sum(axis=1) == 0.0, 0] = 1.0
        return VectorCollection.from_dense(dense)

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=10 ** 6), min_size=1, max_size=40),
        st.sampled_from([2, 3]),
    )
    def test_migrate_then_estimate_matches_unsharded(self, ops, num_shards):
        pool = self._pool()
        log = ChangeLog()
        live = []
        next_id = 0
        for op in ops:
            if live and op % 3 == 0:
                log.append(Delete(live.pop(op % len(live))))
            else:
                log.append(Insert(pool.row_dict(op % pool.size)))
                live.append(next_id)
                next_id += 1
        unsharded = MutableLSHIndex(pool.dimension, num_hashes=6, random_state=13)
        log.replay(unsharded)
        sharded = ShardedMutableIndex(
            pool.dimension,
            num_shards=num_shards,
            num_hashes=6,
            random_state=13,
            partitioner="rendezvous",
        )
        with ShardRouter(sharded, batch_size=7) as router:
            router.replay(log)
        rebalance_cluster(sharded, num_shards=num_shards + 1)
        rebalance_cluster(sharded, num_shards=num_shards)
        sharded.check_invariants()
        assert sharded.size == unsharded.size
        assert sharded.num_collision_pairs == unsharded.num_collision_pairs
        assert sharded.num_non_collision_pairs == unsharded.num_non_collision_pairs
        if sharded.size == 0:
            return
        ours = ShardedStreamingEstimator(sharded).estimate(
            0.5, random_state=1, mode="exact"
        )
        theirs = StreamingEstimator(unsharded, random_state=5).estimate(
            0.5, random_state=1, mode="exact"
        )
        assert ours.value == theirs.value


class TestRouterFlushGuarantees:
    """Regressions: buffered inserts must never be silently dropped."""

    def test_replay_flushes_buffer_when_an_event_fails(self):
        index = ShardedMutableIndex(4, num_shards=2, num_hashes=4, random_state=0)
        log = ChangeLog()
        log.append(Insert([1.0, 0.0, 0.0, 0.0]))
        log.append(Insert([0.0, 1.0, 0.0, 0.0]))
        log.append(Insert([0.0, 0.0, 0.0]))  # wrong dimension: replay fails
        router = ShardRouter(index, batch_size=100)
        with pytest.raises(ValidationError):
            router.replay(log)
        # the two valid buffered inserts were committed, not dropped
        assert router.pending == 0
        assert index.size == 2
        router.close()

    def test_replay_without_trailing_checkpoint_flushes(self):
        index = ShardedMutableIndex(4, num_shards=2, num_hashes=4, random_state=0)
        log = ChangeLog()
        for _ in range(3):
            log.append(Insert([1.0, 0.5, 0.0, 0.0]))
        with ShardRouter(index, batch_size=100) as router:
            router.replay(log)  # ends mid-batch
            assert router.pending == 0
        assert index.size == 3

    def test_estimate_sees_buffered_inserts(self):
        index = ShardedMutableIndex(4, num_shards=2, num_hashes=4, random_state=0)
        router = ShardRouter(index, batch_size=100)
        estimator = ShardedStreamingEstimator(index, router=router)
        for _ in range(4):
            router.insert([1.0, 0.5, 0.0, 0.0])
        assert router.pending == 4
        estimate = estimator.estimate(0.5, random_state=0, mode="exact")
        assert router.pending == 0
        assert index.size == 4
        assert estimate.value > 0.0  # four duplicates: a real join size
        router.close()

    def test_close_is_idempotent_and_late_writes_flush(self):
        index = ShardedMutableIndex(4, num_shards=2, num_hashes=4, random_state=0)
        router = ShardRouter(index, batch_size=100, max_workers=4)
        router.insert([1.0, 0.0, 0.0, 0.0])
        router.close()
        router.close()
        assert index.size == 1
        router.insert([0.0, 1.0, 0.0, 0.0])  # post-close writes fall back
        router.flush()
        assert index.size == 2


class TestOwnerOverrideFastPath:
    """The hot ingest path skips owner re-checks unless owners diverge."""

    def test_flag_clear_after_full_rebalance(self, small_collection, churn_log_factory):
        _, sharded = _build_pair(
            small_collection, churn_log_factory(small_collection, 400), num_shards=2
        )
        assert not sharded._owner_overrides  # never-rebalanced cluster
        rebalance_cluster(sharded, num_shards=3)
        # a full plan realigns every owner with the new partitioner
        assert not sharded._owner_overrides

    def test_flag_set_by_manual_plan_and_restored(self, small_collection,
                                                  churn_log_factory, tmp_path):
        _, sharded = _build_pair(
            small_collection, churn_log_factory(small_collection, 400), num_shards=2
        )
        keys = [
            key for key, (count, shard_id) in sharded._bucket_refs.items()
            if shard_id == 0
        ][:3]
        apply_plan(
            sharded,
            RebalancePlan(moves=[KeyMove(key, 0, 1) for key in keys],
                          total_keys=len(sharded._bucket_refs)),
        )
        assert sharded._owner_overrides  # owners now deviate from the partitioner
        path = tmp_path / "cluster.pkl"
        sharded.snapshot(path)
        revived = ShardedMutableIndex.restore(path)
        assert revived._owner_overrides  # restore re-detects the divergence
        # routing still honours the manual owners on both write paths
        for row in range(10):
            revived.insert(small_collection.row(row))
        revived.insert_many(small_collection.matrix[:10])
        revived.check_invariants()


class TestCommitFailureSafety:
    """A commit that fails partway must poison the router, not double-ingest."""

    def test_failed_commit_refuses_retry(self):
        index = ShardedMutableIndex(4, num_shards=2, num_hashes=4, random_state=0)
        router = ShardRouter(index, batch_size=100)
        for _ in range(3):
            router.insert([1.0, 0.5, 0.0, 0.0])

        def explode(*args, **kwargs):
            raise RuntimeError("disk full")

        originals = [shard.index.insert_many_prepared for shard in index.shards]
        for shard in index.shards:
            shard.index.insert_many_prepared = explode
        with pytest.raises(RuntimeError):
            router.flush()
        for shard, original in zip(index.shards, originals):
            shard.index.insert_many_prepared = original
        # the commit may have partially applied: retrying would re-claim
        # ids and ingest the rows twice, so the router refuses
        with pytest.raises(ValidationError):
            router.flush()
        # close skips the unsafe final flush but must not strand the
        # buffered rows silently: it raises, carrying the unapplied rows
        with pytest.raises(StrandedWritesError) as excinfo:
            router.close()
        assert len(excinfo.value.pending_rows) == 3
        router.close()  # rows were drained into the error: now idempotent
        index.check_invariants()
        assert index.size == 0

    def test_legacy_snapshot_with_out_of_range_budget_restores(self, small_collection,
                                                               churn_log_factory):
        """PR-2-era snapshots could store staleness_budget > 1 (then valid,
        meaning 'never repair'); they must keep restoring, clamped to the
        equivalent 1.0."""
        _, sharded = _build_pair(
            small_collection, churn_log_factory(small_collection, 200), num_shards=2
        )
        state = sharded.to_state()
        state["estimator_kwargs"] = {"staleness_budget": 100.0}
        for shard_state in state["shards"]:
            shard_state.pop("estimators", None)  # old snapshots had none
        revived = ShardedMutableIndex.from_state(state, estimator_seed=3)
        revived.check_invariants()
        for shard in revived.shards:
            assert shard.estimator.staleness_budget == 1.0
