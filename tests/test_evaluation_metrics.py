"""Tests for the evaluation metrics (relative error split, trial summaries)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.evaluation import (
    mean_overestimation_error,
    mean_underestimation_error,
    signed_relative_error,
    summarize_trials,
)
from repro.evaluation.metrics import count_large_errors


class TestSignedRelativeError:
    def test_overestimate_positive(self):
        assert signed_relative_error(150, 100) == pytest.approx(0.5)

    def test_underestimate_negative(self):
        assert signed_relative_error(25, 100) == pytest.approx(-0.75)

    def test_exact_is_zero(self):
        assert signed_relative_error(100, 100) == 0.0

    def test_zero_estimate_is_minus_one(self):
        assert signed_relative_error(0, 100) == -1.0

    def test_empty_join_conventions(self):
        assert signed_relative_error(0, 0) == 0.0
        assert signed_relative_error(5, 0) == float("inf")

    def test_negative_true_size_rejected(self):
        with pytest.raises(ValidationError):
            signed_relative_error(1, -1)


class TestSplitErrors:
    def test_only_overestimates_counted(self):
        estimates = [200, 50, 100]
        assert mean_overestimation_error(estimates, 100) == pytest.approx(1.0)

    def test_only_underestimates_counted(self):
        estimates = [200, 50, 100]
        assert mean_underestimation_error(estimates, 100) == pytest.approx(-0.5)

    def test_zero_when_no_matching_side(self):
        assert mean_overestimation_error([10, 20], 100) == 0.0
        assert mean_underestimation_error([150, 200], 100) == 0.0

    def test_underestimation_bounded_by_minus_one(self):
        assert mean_underestimation_error([0, 0], 100) == -1.0


class TestSummarizeTrials:
    def test_summary_fields(self):
        summary = summarize_trials([90, 110, 100, 120], 100)
        assert summary.num_trials == 4
        assert summary.mean_estimate == pytest.approx(105.0)
        assert summary.std_estimate == pytest.approx(np.std([90, 110, 100, 120]))
        assert summary.num_overestimates == 2
        assert summary.num_underestimates == 1
        assert summary.mean_overestimation == pytest.approx(0.15)
        assert summary.mean_underestimation == pytest.approx(-0.1)

    def test_mean_absolute_error(self):
        summary = summarize_trials([50, 150], 100)
        assert summary.mean_absolute_relative_error == pytest.approx(0.5)

    def test_unbounded_errors_tracked(self):
        summary = summarize_trials([0.0, 10.0], 0)
        assert summary.num_unbounded == 1
        assert summary.num_overestimates == 1

    def test_as_dict_round_trip(self):
        summary = summarize_trials([1.0, 2.0], 2)
        as_dict = summary.as_dict()
        assert as_dict["num_trials"] == 2
        assert as_dict["true_size"] == 2

    def test_empty_estimates_rejected(self):
        with pytest.raises(ValidationError):
            summarize_trials([], 10)


class TestCountLargeErrors:
    def test_overestimates_counted(self):
        result = count_large_errors([1500, 90, 100], 100, factor=10)
        assert result == {"overestimates": 1, "underestimates": 0}

    def test_underestimates_counted(self):
        result = count_large_errors([5, 0, 100], 100, factor=10)
        assert result == {"overestimates": 0, "underestimates": 2}

    def test_empty_join(self):
        result = count_large_errors([0, 3], 0, factor=10)
        assert result == {"overestimates": 1, "underestimates": 0}

    def test_invalid_factor(self):
        with pytest.raises(ValidationError):
            count_large_errors([1], 1, factor=1.0)
