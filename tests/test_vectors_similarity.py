"""Tests for similarity measures."""

import math

import numpy as np
import pytest

from repro.errors import DimensionMismatchError, ValidationError
from repro.vectors import (
    VectorCollection,
    cosine_pairs,
    cosine_similarity,
    cosine_similarity_matrix,
    jaccard_similarity,
)
from repro.vectors.similarity import (
    angular_collision_to_cosine,
    cosine_to_angular_collision,
    dot_pairs,
    jaccard_pairs,
    overlap_similarity,
)


class TestCosineSimilarity:
    def test_identical_vectors(self):
        assert cosine_similarity([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        assert cosine_similarity([1.0, 0.0], [0.0, 1.0]) == pytest.approx(0.0)

    def test_opposite_vectors(self):
        assert cosine_similarity([1.0, 0.0], [-1.0, 0.0]) == pytest.approx(-1.0)

    def test_scale_invariance(self):
        assert cosine_similarity([1.0, 2.0], [10.0, 20.0]) == pytest.approx(1.0)

    def test_known_angle(self):
        assert cosine_similarity([1.0, 0.0], [1.0, 1.0]) == pytest.approx(
            1.0 / math.sqrt(2.0)
        )

    def test_zero_vector_gives_zero(self):
        assert cosine_similarity([0.0, 0.0], [1.0, 2.0]) == 0.0

    def test_sparse_rows(self, tiny_collection):
        value = cosine_similarity(tiny_collection.row(0), tiny_collection.row(2))
        assert value == pytest.approx(1.0 / math.sqrt(2.0))

    def test_dimension_mismatch_raises(self):
        with pytest.raises(DimensionMismatchError):
            cosine_similarity([1.0, 2.0], [1.0, 2.0, 3.0])


class TestCosinePairs:
    def test_matches_scalar_function(self, tiny_collection):
        left = [0, 0, 2, 4]
        right = [1, 3, 3, 5]
        batch = cosine_pairs(tiny_collection, left, right)
        for value, (i, j) in zip(batch, zip(left, right)):
            expected = cosine_similarity(
                tiny_collection.row_dense(i), tiny_collection.row_dense(j)
            )
            assert value == pytest.approx(expected, abs=1e-12)

    def test_empty_input(self, tiny_collection):
        assert cosine_pairs(tiny_collection, [], []).shape == (0,)

    def test_mismatched_lengths_raise(self, tiny_collection):
        with pytest.raises(ValidationError):
            cosine_pairs(tiny_collection, [0, 1], [2])

    def test_cross_collection(self, tiny_collection):
        other = VectorCollection.from_dense([[1.0, 0.0, 0.0, 0.0]])
        values = cosine_pairs(tiny_collection, [0, 3], [0, 0], other=other)
        assert values[0] == pytest.approx(1.0)
        assert values[1] == pytest.approx(0.0)

    def test_values_clipped_to_unit_interval(self, small_collection):
        left = np.arange(50)
        right = np.arange(50, 100)
        values = cosine_pairs(small_collection, left, right)
        assert np.all(values <= 1.0) and np.all(values >= -1.0)


class TestDotPairs:
    def test_dot_products(self, tiny_collection):
        values = dot_pairs(tiny_collection, [0, 2], [2, 4])
        assert values[0] == pytest.approx(1.0)
        assert values[1] == pytest.approx(0.0)

    def test_mismatched_lengths_raise(self, tiny_collection):
        with pytest.raises(ValidationError):
            dot_pairs(tiny_collection, [0], [1, 2])


class TestSimilarityMatrix:
    def test_diagonal_is_one(self, tiny_collection):
        matrix = cosine_similarity_matrix(tiny_collection)
        np.testing.assert_allclose(np.diag(matrix), np.ones(6), atol=1e-12)

    def test_symmetry(self, tiny_collection):
        matrix = cosine_similarity_matrix(tiny_collection)
        np.testing.assert_allclose(matrix, matrix.T, atol=1e-12)

    def test_matches_pairwise(self, tiny_collection):
        matrix = cosine_similarity_matrix(tiny_collection)
        assert matrix[0, 1] == pytest.approx(1.0)
        assert matrix[0, 3] == pytest.approx(0.0)

    def test_sparse_output(self, tiny_collection):
        matrix = cosine_similarity_matrix(tiny_collection, dense=False)
        assert matrix.shape == (6, 6)

    def test_dimension_mismatch(self, tiny_collection):
        other = VectorCollection.from_dense([[1.0, 2.0]])
        with pytest.raises(DimensionMismatchError):
            cosine_similarity_matrix(tiny_collection, other)


class TestJaccard:
    def test_identical_sets(self):
        assert jaccard_similarity({1, 2, 3}, {1, 2, 3}) == 1.0

    def test_disjoint_sets(self):
        assert jaccard_similarity({1, 2}, {3, 4}) == 0.0

    def test_partial_overlap(self):
        assert jaccard_similarity({1, 2, 3}, {2, 3, 4}) == pytest.approx(0.5)

    def test_empty_sets(self):
        assert jaccard_similarity(set(), set()) == 0.0

    def test_accepts_iterables(self):
        assert jaccard_similarity([1, 1, 2], (2, 3)) == pytest.approx(1.0 / 3.0)

    def test_jaccard_pairs_on_supports(self, binary_collection):
        values = jaccard_pairs(binary_collection, [0, 0], [1, 2])
        assert values[0] == pytest.approx(1.0)
        assert values[1] == pytest.approx(3.0 / 5.0)

    def test_jaccard_pairs_length_mismatch(self, binary_collection):
        with pytest.raises(ValidationError):
            jaccard_pairs(binary_collection, [0], [1, 2])


class TestOverlap:
    def test_overlap_full_containment(self):
        assert overlap_similarity({1, 2}, {1, 2, 3, 4}) == 1.0

    def test_overlap_empty(self):
        assert overlap_similarity(set(), {1}) == 0.0


class TestAngularTransform:
    def test_identical_maps_to_one(self):
        assert cosine_to_angular_collision(1.0) == pytest.approx(1.0)

    def test_orthogonal_maps_to_half(self):
        assert cosine_to_angular_collision(0.0) == pytest.approx(0.5)

    def test_opposite_maps_to_zero(self):
        assert cosine_to_angular_collision(-1.0) == pytest.approx(0.0)

    def test_monotone(self):
        values = cosine_to_angular_collision(np.linspace(-1, 1, 21))
        assert np.all(np.diff(values) > 0)

    def test_round_trip(self):
        original = np.linspace(-0.99, 0.99, 17)
        recovered = angular_collision_to_cosine(cosine_to_angular_collision(original))
        np.testing.assert_allclose(recovered, original, atol=1e-10)

    def test_scalar_round_trip(self):
        assert angular_collision_to_cosine(
            cosine_to_angular_collision(0.8)
        ) == pytest.approx(0.8)
