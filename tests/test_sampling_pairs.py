"""Tests for uniform pair sampling and cross sampling."""

import numpy as np
import pytest

from repro.errors import InsufficientSampleError, ValidationError
from repro.sampling import CrossPairSampler, UniformPairSampler
from repro.sampling.pairs import scale_up
from repro.vectors import VectorCollection


class TestUniformPairSampler:
    def test_population_size_self_join(self, small_collection):
        sampler = UniformPairSampler(small_collection)
        assert sampler.population_size == small_collection.total_pairs

    def test_population_size_general_join(self, small_collection, tiny_collection):
        sampler = UniformPairSampler(small_collection, other=tiny_collection)
        assert sampler.population_size == small_collection.size * tiny_collection.size

    def test_no_self_pairs_in_self_join(self, small_collection):
        sampler = UniformPairSampler(small_collection)
        left, right = sampler.sample(5000, random_state=0)
        assert np.all(left != right)

    def test_sample_size_respected(self, small_collection):
        sampler = UniformPairSampler(small_collection)
        left, right = sampler.sample(123, random_state=0)
        assert left.size == right.size == 123

    def test_zero_sample(self, small_collection):
        left, right = UniformPairSampler(small_collection).sample(0)
        assert left.size == 0

    def test_negative_sample_raises(self, small_collection):
        with pytest.raises(ValidationError):
            UniformPairSampler(small_collection).sample(-1)

    def test_single_vector_collection_raises(self):
        single = VectorCollection.from_dense([[1.0, 2.0]])
        with pytest.raises(InsufficientSampleError):
            UniformPairSampler(single).sample(5)

    def test_deterministic_given_seed(self, small_collection):
        sampler = UniformPairSampler(small_collection)
        a = sampler.sample(40, random_state=9)
        b = sampler.sample(40, random_state=9)
        np.testing.assert_array_equal(a[0], b[0])

    def test_general_join_indices_in_range(self, small_collection, tiny_collection):
        sampler = UniformPairSampler(small_collection, other=tiny_collection)
        left, right = sampler.sample(300, random_state=1)
        assert left.max() < small_collection.size
        assert right.max() < tiny_collection.size

    def test_uniform_coverage(self):
        collection = VectorCollection.from_dense(np.eye(6))
        sampler = UniformPairSampler(collection)
        left, right = sampler.sample(30000, random_state=2)
        pair_ids = left * 6 + right
        unique = np.unique(pair_ids)
        assert unique.size == 30  # all ordered pairs i != j appear


class TestCrossPairSampler:
    def test_pairs_considered_matches_arrays(self, small_collection):
        sampler = CrossPairSampler(small_collection)
        left, right, considered = sampler.sample(100, random_state=0)
        assert left.size == right.size == considered

    def test_pair_budget_approximately_met(self, small_collection):
        sampler = CrossPairSampler(small_collection)
        _, _, considered = sampler.sample(400, random_state=0)
        # ceil(sqrt(400)) = 20 vectors -> C(20,2) = 190 pairs
        assert considered == 190

    def test_no_self_pairs(self, small_collection):
        left, right, _ = CrossPairSampler(small_collection).sample(100, random_state=3)
        assert np.all(left != right)

    def test_sampled_vectors_are_distinct(self, small_collection):
        left, right, _ = CrossPairSampler(small_collection).sample(225, random_state=4)
        # every unordered pair appears at most once
        keys = {(min(a, b), max(a, b)) for a, b in zip(left.tolist(), right.tolist())}
        assert len(keys) == left.size

    def test_general_join_cross(self, small_collection, tiny_collection):
        sampler = CrossPairSampler(small_collection, other=tiny_collection)
        left, right, considered = sampler.sample(36, random_state=0)
        assert considered == left.size
        assert right.max() < tiny_collection.size

    def test_invalid_budget(self, small_collection):
        with pytest.raises(ValidationError):
            CrossPairSampler(small_collection).sample(0)

    def test_budget_larger_than_population(self, tiny_collection):
        sampler = CrossPairSampler(tiny_collection)
        left, right, considered = sampler.sample(10_000, random_state=0)
        assert considered == tiny_collection.total_pairs


class TestScaleUp:
    def test_basic_scaling(self):
        assert scale_up(3, 100, 10_000) == pytest.approx(300.0)

    def test_zero_count(self):
        assert scale_up(0, 100, 10_000) == 0.0

    def test_zero_sample_raises(self):
        with pytest.raises(ValidationError):
            scale_up(1, 0, 100)
