"""Tests for the multi-process shard serving subsystem (repro.cluster).

Every test that spawns worker processes carries a hard
``@pytest.mark.timeout`` (see tests/conftest.py): a deadlocked worker or
coordinator must fail the test quickly, never hang the suite.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterCoordinator, ProcessBackend, parse_address
from repro.cluster import worker as worker_module
from repro.engine import EngineConfig, JoinEstimationEngine, available_backends
from repro.errors import (
    ClusterError,
    InsufficientSampleError,
    ValidationError,
    WorkerCrashError,
)
from repro.shard import ShardedMutableIndex, ShardedStreamingEstimator, ShardRouter
from repro.streaming import ChangeLog, Delete, Insert, MutableLSHIndex, StreamingEstimator
from repro.vectors import VectorCollection

SEED = 7
NUM_HASHES = 10
THRESHOLD = 0.7

#: fail fast in tests: a worker that needs >30s for one op is stuck
FAST = {"request_timeout": 30.0}


def process_config(dimension, shards=3, **options):
    merged = {"shards": shards, **FAST, **options}
    return EngineConfig(
        backend="process",
        num_hashes=NUM_HASHES,
        seed=SEED,
        dimension=dimension,
        options=merged,
    )


def reference_estimator(collection, log):
    """The unsharded stack under the engine's determinism contract."""
    index = MutableLSHIndex(
        collection.dimension, num_hashes=NUM_HASHES, random_state=SEED + 1
    )
    log.replay(index)
    return StreamingEstimator(index, random_state=SEED + 2)


@pytest.fixture(scope="module")
def churned_cluster(small_collection, churn_log_factory):
    """(unsharded StreamingEstimator, open process engine) on one churn log."""
    log = churn_log_factory(small_collection, 250)
    engine = JoinEstimationEngine(process_config(small_collection.dimension)).open()
    engine.ingest(log)
    engine.flush()
    yield reference_estimator(small_collection, log), engine
    engine.close()


class TestProcessBackendFidelity:
    def test_registered(self):
        assert "process" in available_backends()
        assert "multi-process" in ProcessBackend.CAPABILITIES

    @pytest.mark.timeout(180)
    def test_exact_mode_bit_identical_to_unsharded(self, churned_cluster):
        reference, engine = churned_cluster
        for seed in (3, 11, 101):
            ours = engine.estimate(THRESHOLD, seed=seed, mode="exact")
            theirs = reference.estimate(THRESHOLD, random_state=seed, mode="exact")
            assert ours.value == theirs.value
            assert ours.provenance.backend == "process"
        details = ours.provenance.backend_details
        assert details["num_shards"] == 3
        assert sum(details["shard_sizes"]) == details["size"]
        assert len(details["workers"]) == 3
        assert all(info["alive"] for info in details["workers"])

    @pytest.mark.timeout(180)
    def test_strata_match_reference(self, churned_cluster):
        reference, engine = churned_cluster
        backend = engine.backend
        assert backend.size == reference.index.size
        assert backend.index.num_collision_pairs == reference.index.num_collision_pairs
        assert backend.index.num_non_collision_pairs == reference.index.num_non_collision_pairs
        backend.index.check_invariants()

    @pytest.mark.timeout(180)
    def test_merged_mode_serves_from_worker_reservoirs(self, churned_cluster):
        reference, engine = churned_cluster
        exact = engine.estimate(THRESHOLD, seed=2, mode="exact")
        merged = engine.estimate(THRESHOLD, seed=2, mode="merged")
        assert merged.value >= 0.0
        # merged pools per-worker reservoirs; it must stay in the same
        # ballpark as the exact stratified answer on this corpus
        scale = max(exact.value, 1.0)
        assert abs(merged.value - exact.value) / scale < 1.5

    @pytest.mark.timeout(180)
    def test_snapshot_restores_bit_identically_across_shapes(
        self, churned_cluster, tmp_path
    ):
        reference, engine = churned_cluster
        want = engine.estimate(THRESHOLD, seed=13, mode="exact").value
        path = tmp_path / "cluster.pkl"
        engine.snapshot(path)
        # same shape: a fresh process cluster
        revived = JoinEstimationEngine.restore(path)
        try:
            assert revived.config.backend == "process"
            assert revived.estimate(THRESHOLD, seed=13, mode="exact").value == want
            revived.backend.index.check_invariants()
        finally:
            revived.close()
        # cross shape: the embedded index state revives in process too
        import pickle

        with open(path, "rb") as handle:
            state = pickle.load(handle)
        in_process = ShardedMutableIndex.from_state(
            state["backend"]["index"], estimator_seed=SEED + 2
        )
        in_process.check_invariants()
        merged = ShardedStreamingEstimator(in_process)
        assert merged.estimate(THRESHOLD, random_state=13, mode="exact").value == want


class TestRemoteRebalance:
    @pytest.mark.timeout(240)
    def test_grow_and_shrink_keep_exact_estimates(self, small_collection, churn_log_factory):
        log = churn_log_factory(small_collection, 150)
        reference = reference_estimator(small_collection, log)
        want = reference.estimate(THRESHOLD, random_state=9, mode="exact").value
        config = process_config(small_collection.dimension, shards=2, partitioner="rendezvous")
        with JoinEstimationEngine(config) as engine:
            engine.ingest(log)
            engine.flush()
            plan = engine.rebalance(num_shards=4)
            assert plan.moved_keys >= 0
            cluster = engine.backend.index
            assert cluster.num_shards == 4
            assert len(cluster.worker_infos) == 4
            cluster.check_invariants()
            assert engine.estimate(THRESHOLD, seed=9, mode="exact").value == want
            engine.rebalance(num_shards=3)
            cluster = engine.backend.index
            assert cluster.num_shards == 3
            # the dropped shard's worker process must be reaped
            assert len(cluster.worker_infos) == 3
            cluster.check_invariants()
            assert engine.estimate(THRESHOLD, seed=9, mode="exact").value == want
            # merged mode still serves after migration-repaired reservoirs
            assert engine.estimate(THRESHOLD, seed=9, mode="merged").value >= 0.0
            # the rebalance-synced config carries no stale 'shards' alias
            # next to the adopted 'num_shards' — it must re-open cleanly
            assert "shards" not in engine.config.options
            assert engine.config.options["num_shards"] == 3
            ProcessBackend(EngineConfig.from_dict(engine.config.to_dict()))


class TestClusterFailurePaths:
    @pytest.mark.timeout(120)
    def test_worker_crash_mid_ingest_surfaces_not_hangs(self, small_collection):
        engine = JoinEstimationEngine(
            process_config(small_collection.dimension, shards=3, batch_size=16)
        ).open()
        coordinator = engine.backend.index
        try:
            engine.ingest(small_collection)
            victim = coordinator._handles[1]
            victim.process.kill()
            victim.process.join(timeout=10)
            # the bulk ingest commits straight through the coordinator and
            # must surface the dead worker, not hang
            with pytest.raises(WorkerCrashError):
                engine.ingest(small_collection)
            assert coordinator.broken is not None
            # once broken, every further op reports the cluster state clearly
            with pytest.raises(ClusterError):
                engine.ingest(Insert(np.zeros(small_collection.dimension)))
                engine.flush()  # the buffered insert must not commit quietly
            # the unapplied row stays recoverable; with the buffer drained,
            # estimates surface the broken cluster rather than hanging
            assert len(engine.backend._router.drain_pending()) == 1
            with pytest.raises(ClusterError):
                engine.estimate(THRESHOLD, seed=1, mode="exact")
        finally:
            try:
                engine.close()
            except ClusterError:
                pass
        for info in coordinator.worker_infos:
            assert not info["alive"]

    @pytest.mark.timeout(120)
    def test_worker_crash_mid_estimate_surfaces_not_hangs(self, small_collection):
        engine = JoinEstimationEngine(process_config(small_collection.dimension)).open()
        try:
            engine.ingest(small_collection)
            victim = engine.backend.index._handles[0]
            victim.process.kill()
            victim.process.join(timeout=10)
            with pytest.raises(WorkerCrashError):
                engine.estimate(THRESHOLD, seed=1, mode="exact")
        finally:
            try:
                engine.close()
            except ClusterError:
                pass

    @pytest.mark.timeout(120)
    def test_close_is_idempotent_and_reaps_workers(self, small_collection):
        engine = JoinEstimationEngine(process_config(small_collection.dimension)).open()
        engine.ingest(small_collection)
        coordinator = engine.backend.index
        processes = [handle.process for handle in coordinator._handles]
        engine.close()
        engine.close()  # idempotent
        coordinator.close()  # and directly on the coordinator too
        for process in processes:
            assert not process.is_alive()
        with pytest.raises(ClusterError):
            coordinator.insert(np.zeros(small_collection.dimension))

    @pytest.mark.timeout(120)
    def test_unreachable_worker_fails_fast(self):
        # nothing listens on the discard port: construction fails with a
        # clear error instead of hanging
        with pytest.raises(ClusterError):
            ClusterCoordinator(
                8,
                num_shards=2,
                num_hashes=4,
                addresses=["127.0.0.1:9", "127.0.0.1:9"],
                request_timeout=5.0,
            )

    @pytest.mark.timeout(120)
    def test_worker_side_config_error_propagates_as_library_type(self):
        # the worker's StreamingEstimator rejects reservoir_size < 1; the
        # error must come back as the same library type, and the half-built
        # cluster must tear its already-spawned workers down on the way out
        with pytest.raises(ValidationError):
            ClusterCoordinator(
                8,
                num_shards=2,
                num_hashes=4,
                estimator_kwargs={"reservoir_size": -1},
                **FAST,
            )

    def test_option_validation(self):
        # conflicting shard-count aliases are rejected when the backend opens
        config = EngineConfig(
            backend="process", dimension=8, options={"shards": 2, "num_shards": 3}
        )
        with pytest.raises(ValidationError):
            JoinEstimationEngine(config).open()
        with pytest.raises(ValidationError):
            EngineConfig(backend="process", dimension=8, options={"bogus": 1})
        with pytest.raises(ValidationError):
            ClusterCoordinator(8, num_shards=3, addresses=["127.0.0.1:1024"])

    def test_parse_address(self):
        assert parse_address("localhost:1234") == ("localhost", 1234)
        for bad in ("nope", "host:", "host:0", "host:notaport", ":88"):
            with pytest.raises(ValidationError):
                parse_address(bad)


class TestStandaloneWorkers:
    """The ``repro worker`` serving loop, exercised in-process via threads."""

    @staticmethod
    def _start_worker(token=None, once=True):
        ready = threading.Event()
        bound = {}

        def on_ready(address):
            bound["address"] = address
            ready.set()

        thread = threading.Thread(
            target=worker_module.serve,
            args=(("127.0.0.1", 0),),
            kwargs={"token": token, "once": once, "on_ready": on_ready},
            daemon=True,
        )
        thread.start()
        assert ready.wait(timeout=30), "worker never started listening"
        return thread, bound["address"]

    @pytest.mark.timeout(120)
    def test_coordinator_over_external_workers(self, small_collection, churn_log_factory):
        threads_addresses = [self._start_worker(token="hunter2") for _ in range(2)]
        addresses = [f"{host}:{port}" for _thread, (host, port) in threads_addresses]
        log = churn_log_factory(small_collection, 120)
        reference = reference_estimator(small_collection, log)
        config = process_config(
            small_collection.dimension, shards=2, addresses=addresses, token="hunter2"
        )
        with JoinEstimationEngine(config) as engine:
            engine.ingest(log)
            engine.flush()
            ours = engine.estimate(THRESHOLD, seed=21, mode="exact")
            theirs = reference.estimate(THRESHOLD, random_state=21, mode="exact")
            assert ours.value == theirs.value
            infos = engine.backend.index.worker_infos
            assert all(info["address"] is not None for info in infos)
        for thread, _address in threads_addresses:
            thread.join(timeout=30)  # --once: session end stops the worker
            assert not thread.is_alive()

    @pytest.mark.timeout(120)
    def test_wrong_token_rejected(self):
        thread, (host, port) = self._start_worker(token="right", once=True)
        with pytest.raises(ClusterError):
            ClusterCoordinator(
                8,
                num_shards=1,
                num_hashes=4,
                addresses=[f"{host}:{port}"],
                token="wrong",
                request_timeout=10.0,
            )
        # the worker survives a bad handshake and still serves a good one
        cluster = ClusterCoordinator(
            8,
            num_shards=1,
            num_hashes=4,
            addresses=[f"{host}:{port}"],
            token="right",
            request_timeout=10.0,
        )
        try:
            cluster.insert(np.arange(8, dtype=float))
            assert cluster.size == 1
        finally:
            cluster.close()
        thread.join(timeout=30)

    def test_cli_parser_accepts_worker(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["worker", "--listen", "127.0.0.1:7070", "--token", "t", "--once"]
        )
        assert args.command == "worker"
        assert args.listen == "127.0.0.1:7070"
        assert args.once


class TestShardWorkerOps:
    """Protocol-level tests of the worker dispatch, driven in process.

    These pin the op semantics (and keep the worker code measurable by
    the coverage job, which cannot see child processes).
    """

    @staticmethod
    def _configured_worker(shard_estimators=True):
        template = MutableLSHIndex(6, num_hashes=4, num_tables=2, random_state=3)
        worker = worker_module.ShardWorker()
        stats = worker.handle(
            "configure",
            {
                "shard_id": 0,
                "dimension": 6,
                "num_hashes": 4,
                "num_tables": 2,
                "families": template.families,
                "shard_estimators": shard_estimators,
                "estimator_kwargs": {"reservoir_size": 32},
                "estimator_rng": np.random.default_rng(5),
            },
        )
        assert stats["size"] == 0 and stats["has_estimator"] is shard_estimators
        return worker

    @staticmethod
    def _insert(worker, rows, first_id=0):
        from scipy import sparse

        csr = sparse.csr_matrix(np.asarray(rows, dtype=float))
        signatures = [
            family.hash_matrix(csr) for family in worker.index.families
        ]
        ids = np.arange(first_id, first_id + csr.shape[0], dtype=np.int64)
        return worker.handle(
            "insert_prepared", {"ids": ids, "csr": csr, "signatures": signatures}
        )

    def test_mutation_replies_carry_mirror_stats(self):
        worker = self._configured_worker()
        rows = np.eye(6)[:4] + 0.1
        reply = self._insert(worker, rows)
        assert reply["size"] == 4
        # timing moved out of op payloads into the reply meta envelope
        # (serve_connection stamps meta["seconds"]); payloads stay data-only
        assert "seconds" not in reply
        assert reply["num_collision_pairs"] == worker.index.num_collision_pairs
        expected_key = worker.index.primary_table.signature_key(2)
        deleted = worker.handle("delete", {"vector_id": 2})
        assert deleted["size"] == 3
        assert deleted["key"] == expected_key  # one round trip tells the
        # coordinator which bucket ref to decrement
        ping = worker.handle("ping", {})
        assert ping["shard_id"] == 0 and ping["size"] == 3

    def test_bucket_members_gather_and_sample(self):
        worker = self._configured_worker()
        rows = [[1.0, 0, 0, 0, 0, 0]] * 3 + [[0, 1.0, 0, 0, 0, 0]]
        self._insert(worker, rows)
        key = worker.index.primary_table.signature_key(0)
        members = worker.handle("bucket_members", {"keys": [key]})["members"]
        assert members == [[0, 1, 2]]
        gathered = worker.handle(
            "gather_rows", {"ids": np.asarray([3, 0]), "normalized": True}
        )["matrix"]
        assert gathered.shape == (2, 6)
        from repro.rng import generator_state

        rng = np.random.default_rng(9)
        reference = np.random.default_rng(9)
        reply = worker.handle(
            "sample_pairs", {"stratum": "h", "count": 8, "rng": generator_state(rng)}
        )
        left, right = worker.index.sample_collision_pairs(8, random_state=reference)
        np.testing.assert_array_equal(reply["left"], left)
        np.testing.assert_array_equal(reply["right"], right)
        # the advanced generator state is shipped back (stream continuity)
        assert reply["rng"] == generator_state(reference)
        with pytest.raises(ValidationError):
            worker.handle("sample_pairs", {"stratum": "x", "count": 1, "rng": generator_state(rng)})

    def test_snapshot_restore_and_estimator_lifecycle(self):
        worker = self._configured_worker()
        self._insert(worker, np.eye(6) + 0.2)
        reservoir = worker.handle("reservoir", {"stratum": "l"})
        assert reservoir["usable"] and len(reservoir["left"]) > 0
        state = worker.handle("snapshot", {})["state"]
        revived = worker_module.ShardWorker()
        stats = revived.handle(
            "restore",
            {
                "state": state,
                "shard_id": 1,
                "shard_estimators": True,
                "estimator_kwargs": {},
                "build_missing": False,
            },
        )
        assert stats["size"] == 6 and stats["has_estimator"]  # adopted from state
        revived.handle(
            "account_migration",
            {"departed_ids": [0], "unseen_collision_pairs": 1,
             "unseen_non_collision_pairs": 2},
        )
        revived.handle("check", {})
        closed = revived.handle("close_estimator", {})
        assert not closed["has_estimator"]
        with pytest.raises(ClusterError):
            revived.handle("reservoir", {"stratum": "l"})

    def test_unconfigured_and_unknown_ops_fail_cleanly(self):
        worker = worker_module.ShardWorker()
        with pytest.raises(ClusterError):
            worker.handle("stats_snapshot", {})  # unknown op
        with pytest.raises(ClusterError):
            worker.handle("snapshot", {})  # not configured yet
        self._configured_worker()  # sanity: configure path works
        worker2 = self._configured_worker()
        with pytest.raises(ClusterError):
            worker2.handle("configure", {"shard_id": 0})  # double configure


class TestTransportFraming:
    def test_round_trip_and_error_descriptions(self):
        import socket as socket_module

        from repro.cluster.transport import (
            Connection,
            describe_error,
            raise_remote_error,
            recv_message,
            send_message,
        )

        left, right = socket_module.socketpair()
        try:
            send_message(left, "ping", {"value": np.arange(3)})
            op, payload, meta = recv_message(right)
            assert op == "ping"
            assert meta == {}
            np.testing.assert_array_equal(payload["value"], np.arange(3))
            conn = Connection(left, timeout=5.0)
            conn.send("ok", {"x": 1})
            assert recv_message(right) == ("ok", {"x": 1}, {})
            conn.close()
            conn.close()  # idempotent
        finally:
            for sock in (left, right):
                try:
                    sock.close()
                except OSError:
                    pass
        # library errors travel as objects and re-raise as themselves
        payload = describe_error(ValidationError("bad value"))
        with pytest.raises(ValidationError, match="bad value"):
            raise_remote_error(payload, context="test")
        # third-party errors re-raise as ClusterError with the traceback
        payload = describe_error(RuntimeError("boom"))
        with pytest.raises(ClusterError, match="boom"):
            raise_remote_error(payload, context="test")

    def test_closed_peer_raises_connection_closed(self):
        import socket as socket_module

        from repro.cluster.transport import Connection, ConnectionClosed

        left, right = socket_module.socketpair()
        right.close()
        conn = Connection(left, timeout=5.0)
        with pytest.raises(ConnectionClosed):
            conn.recv()
        conn.close()


class TestClusterPropertyBased:
    """Acceptance sweep: any event sequence replayed through a process
    cluster serves the exact-mode estimate of an unsharded estimator,
    bit for bit, for the same seed."""

    POOL_SEED = 31

    @staticmethod
    def _pool() -> VectorCollection:
        rng = np.random.default_rng(TestClusterPropertyBased.POOL_SEED)
        dense = (rng.random((24, 8)) < 0.4) * rng.random((24, 8))
        dense[0] = dense[1]  # guarantee at least one colliding pair
        dense[dense.sum(axis=1) == 0.0, 0] = 1.0
        return VectorCollection.from_dense(dense)

    @pytest.mark.timeout(600)
    @settings(max_examples=6, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=30),
        st.sampled_from([1, 2]),
    )
    def test_any_op_sequence_matches_unsharded(self, ops, num_shards):
        pool = self._pool()
        log = ChangeLog()
        live = []
        next_id = 0
        for op in ops:
            if live and op % 3 == 0:
                log.append(Delete(live.pop(op % len(live))))
            else:
                log.append(Insert(pool.row_dict(op % pool.size)))
                live.append(next_id)
                next_id += 1
        unsharded = MutableLSHIndex(pool.dimension, num_hashes=6, random_state=13)
        log.replay(unsharded)
        cluster = ClusterCoordinator(
            pool.dimension,
            num_shards=num_shards,
            num_hashes=6,
            random_state=13,
            **FAST,
        )
        try:
            with ShardRouter(cluster, batch_size=7) as router:
                router.replay(log)
            cluster.check_invariants()
            assert cluster.size == unsharded.size
            assert cluster.num_collision_pairs == unsharded.num_collision_pairs
            assert cluster.num_non_collision_pairs == unsharded.num_non_collision_pairs
            if cluster.size == 0:
                assert ShardedStreamingEstimator(cluster).estimate(0.5).value == 0.0
                return
            ours = ShardedStreamingEstimator(cluster).estimate(
                0.5, random_state=1, mode="exact"
            )
            theirs = StreamingEstimator(unsharded, random_state=5).estimate(
                0.5, random_state=1, mode="exact"
            )
            assert ours.value == theirs.value
        except InsufficientSampleError:
            with pytest.raises(InsufficientSampleError):
                StreamingEstimator(unsharded, random_state=5).estimate(
                    0.5, random_state=1, mode="exact"
                )
        finally:
            cluster.close()
