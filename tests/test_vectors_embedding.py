"""Tests for the vector → multiset embedding (§1 of the paper)."""

import pytest

from repro.errors import ValidationError
from repro.vectors import VectorCollection, collection_to_multisets, vector_to_multiset
from repro.vectors.embedding import embedding_size, multiset_jaccard


class TestVectorToMultiset:
    def test_integer_values_repeat_elements(self):
        multiset = vector_to_multiset({0: 2.0, 3: 1.0})
        assert set(multiset) == {(0, 0), (0, 1), (3, 0)}

    def test_rounding_of_fractional_values(self):
        multiset = vector_to_multiset({1: 1.4, 2: 1.6})
        assert (1, 0) in multiset and (1, 1) not in multiset
        assert (2, 0) in multiset and (2, 1) in multiset

    def test_scale_increases_resolution(self):
        coarse = vector_to_multiset({0: 0.4})
        fine = vector_to_multiset({0: 0.4}, scale=10.0)
        assert len(coarse) == 0
        assert len(fine) == 4

    def test_zero_values_produce_no_elements(self):
        assert vector_to_multiset({0: 0.0, 1: 0.2}) == {}

    def test_negative_scale_raises(self):
        with pytest.raises(ValidationError):
            vector_to_multiset({0: 1.0}, scale=0.0)

    def test_negative_values_use_magnitude(self):
        multiset = vector_to_multiset({0: -2.0})
        assert len(multiset) == 2


class TestCollectionEmbedding:
    def test_binary_collection_round_trip(self, binary_collection):
        multisets = collection_to_multisets(binary_collection)
        assert len(multisets) == binary_collection.size
        # binary vectors embed to one element per non-zero dimension
        assert len(multisets[0]) == binary_collection.nnz_per_row[0]

    def test_embedding_preserves_jaccard_for_binary_vectors(self, binary_collection):
        multisets = collection_to_multisets(binary_collection)
        # records 0 and 1 are identical token sets
        assert multiset_jaccard(multisets[0], multisets[1]) == pytest.approx(1.0)
        # records 0 and 2 share 3 of 5 distinct tokens
        assert multiset_jaccard(multisets[0], multisets[2]) == pytest.approx(3.0 / 5.0)

    def test_embedding_size_counts_elements(self):
        collection = VectorCollection.from_dense([[2.0, 1.0], [0.0, 3.0]])
        multisets = collection_to_multisets(collection)
        assert embedding_size(multisets) == 6

    def test_embedding_blowup_for_weighted_vectors(self):
        """TF-IDF-style weights blow up the embedded set size (the paper's
        motivation for working directly with vectors)."""
        weighted = VectorCollection.from_dense([[7.3, 4.9, 12.1]])
        multisets = collection_to_multisets(weighted)
        assert embedding_size(multisets) == 7 + 5 + 12

    def test_empty_vs_empty_jaccard(self):
        assert multiset_jaccard({}, {}) == 0.0
