"""Tests for repro.serve: generations, server, client, drain semantics."""

from __future__ import annotations

import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.transport import PROTOCOL_VERSION, Connection, parse_address
from repro.engine import EngineConfig, EstimateRequest, JoinEstimationEngine
from repro.errors import (
    ClusterError,
    ServeError,
    ServerBusyError,
    StrandedWritesError,
    ValidationError,
)
from repro.obs import get_tracer, trace
from repro.serve import EstimationServer, GenerationManager, ServeClient
from repro.serve.generations import BatchResult
from repro.streaming import ChangeLog, Delete, Insert
from repro.vectors import VectorCollection

DIMENSION = 16
THRESHOLD = 0.8


def _config(**overrides) -> EngineConfig:
    base = dict(backend="streaming", num_hashes=10, seed=23, dimension=DIMENSION)
    base.update(overrides)
    return EngineConfig(**base)


def _events(count: int, seed: int = 0, dimension: int = DIMENSION):
    rng = np.random.default_rng(seed)
    rows = (rng.random((count, dimension)) < 0.4) * rng.random((count, dimension))
    rows[rows.sum(axis=1) == 0.0, 0] = 1.0
    return [Insert(row) for row in rows]


def _direct_engine(events, config=None) -> JoinEstimationEngine:
    engine = JoinEstimationEngine(config or _config()).open()
    for event in events:
        engine.ingest(event)
    engine.flush()
    return engine


# ----------------------------------------------------------------------
# GenerationManager: the copy-on-write epoch handoff
# ----------------------------------------------------------------------
class TestGenerationManager:
    def test_commit_publishes_and_double_applies(self):
        manager = GenerationManager(_config())
        try:
            events = _events(40)
            results = manager.commit([events[:25], events[25:]])
            assert [r.applied for r in results] == [25, 15]
            assert all(r.error is None for r in results)
            assert manager.epoch == 1
            with manager.read() as generation:
                assert generation.engine.backend.size == 40
            # the retired engine catches up at the next commit and the
            # epochs keep alternating between the two engines
            more = _events(10, seed=1)
            manager.commit([more])
            assert manager.epoch == 2
            with manager.read() as generation:
                assert generation.engine.backend.size == 50
        finally:
            manager.close()

    def test_generation_pointers_only_move_under_the_lock(self):
        """Regression: the recycle path published ``_pending``/``_retired``
        without ``_cond``, racing concurrent ``reader_count``/``close``
        callers (reprolint R002).  Audit every write to the generation
        pointers after construction and run the full two-engine cycle.
        """

        class _HeldCondition:
            """threading.Condition facade that tracks ownership depth."""

            def __init__(self):
                self._inner = threading.Condition()
                self.held = 0

            def __enter__(self):
                self._inner.__enter__()
                self.held += 1
                return self

            def __exit__(self, *exc):
                self.held -= 1
                return self._inner.__exit__(*exc)

            def wait(self, timeout=None):
                return self._inner.wait(timeout)

            def notify_all(self):
                return self._inner.notify_all()

        unlocked_writes = []

        class _AuditedManager(GenerationManager):
            def __setattr__(self, name, value):
                if name in ("_pending", "_retired") and getattr(
                    self, "_audit", False
                ):
                    if self._cond.held == 0:
                        unlocked_writes.append(name)
                super().__setattr__(name, value)

        manager = _AuditedManager(_config())
        manager._cond = _HeldCondition()
        manager._audit = True
        try:
            manager.commit([_events(10)])           # retires engine A
            manager.commit([_events(5, seed=2)])    # recycles A → pending
            manager.commit([_events(5, seed=3)])    # and back again
            assert manager.epoch == 3
            assert unlocked_writes == []
        finally:
            manager._audit = False
            manager.close()

    def test_publication_never_waits_for_readers(self):
        """The writer-starvation bound: publish while a reader is pinned."""
        manager = GenerationManager(_config(), grace_timeout=5.0)
        try:
            manager.commit([_events(10)])
            release = threading.Event()
            pinned = threading.Event()

            def slow_reader():
                with manager.read() as generation:
                    assert generation.epoch == 1
                    pinned.set()
                    release.wait(timeout=10.0)

            reader = threading.Thread(target=slow_reader)
            reader.start()
            assert pinned.wait(timeout=5.0)
            started = time.monotonic()
            manager.commit([_events(5, seed=2)])  # must not wait for the reader
            publish_seconds = time.monotonic() - started
            assert manager.epoch == 2
            with manager.read() as generation:
                assert generation.engine.backend.size == 15
            assert publish_seconds < 2.0, (
                f"publication blocked on a pinned reader for {publish_seconds:.2f}s"
            )
            release.set()
            reader.join(timeout=5.0)
        finally:
            manager.close()

    def test_grace_timeout_bounds_writer_starvation(self):
        manager = GenerationManager(_config(), grace_timeout=0.2)
        try:
            manager.commit([_events(5)])
            release = threading.Event()
            pinned = threading.Event()

            def hog():
                with manager.read():
                    pinned.set()
                    release.wait(timeout=10.0)

            reader = threading.Thread(target=hog)
            reader.start()
            assert pinned.wait(timeout=5.0)
            manager.commit([_events(3, seed=1)])  # publishes; epoch 1 retires
            # the next commit needs the epoch-1 generation back and the
            # hog still pins it: the grace timeout must fire, bounding
            # how long one slow reader can starve the writer
            with pytest.raises(ServeError, match="grace_timeout"):
                manager.commit([_events(2, seed=2)])
            release.set()
            reader.join(timeout=5.0)
            # the timeout is not fatal: once the reader lets go, the
            # writer recycles and commits normally
            manager.commit([_events(2, seed=2)])
            with manager.read() as generation:
                assert generation.engine.backend.size == 10
        finally:
            manager.close()

    def test_rejected_source_fails_its_batch_alone(self):
        manager = GenerationManager(_config())
        try:
            good, bad = _events(4), Delete(10**6)  # deleting an unknown id
            results = manager.commit([good[:2], [bad], good[2:]])
            assert [type(r) for r in results] == [BatchResult] * 3
            assert results[0].error is None and results[0].applied == 2
            assert results[1].error is not None
            assert results[2].error is None and results[2].applied == 2
            assert manager.broken is None  # validation failures never break
            with manager.read() as generation:
                assert generation.engine.backend.size == 4
        finally:
            manager.close()

    def test_read_after_close_raises(self):
        manager = GenerationManager(_config())
        manager.close()
        with pytest.raises(ServeError, match="closed"):
            with manager.read():
                pass  # pragma: no cover

    def test_failed_commit_breaks_manager_and_close_drains(self):
        """Satellite: drain_pending() before close surfaces stranded rows."""
        manager = GenerationManager(
            _config(backend="sharded", options={"num_shards": 2, "batch_size": 1000})
        )

        def explode(*_args, **_kwargs):
            raise RuntimeError("transport failure mid-commit")

        # the *pending* engine receives the batch first: blow up its
        # shard-level commit so flush fails after the rows were buffered
        pending = manager._pending
        for shard in pending.backend._index.shards:
            shard.index.insert_many_prepared = explode
        with pytest.raises(RuntimeError, match="mid-commit"):
            manager.commit([_events(6)])
        assert manager.broken is not None
        # reads keep serving the last published (empty) generation
        with manager.read() as generation:
            assert generation.engine.backend.size == 0
        # further commits are refused rather than diverging the engines
        with pytest.raises(ServeError, match="read-only"):
            manager.commit([_events(1, seed=3)])
        with pytest.raises(StrandedWritesError) as excinfo:
            manager.close()
        stranded = excinfo.value.pending_rows
        assert len(stranded) == 6
        assert all(row.shape == (1, DIMENSION) for row in stranded)
        # the recovered rows replay onto a fresh deployment
        fresh = JoinEstimationEngine(_config()).open()
        for row in stranded:
            fresh.ingest(Insert(np.asarray(row.todense()).ravel()))
        assert fresh.backend.size == 6
        fresh.close()


# ----------------------------------------------------------------------
# engine-level hooks the serving layer depends on
# ----------------------------------------------------------------------
class TestEngineServeHooks:
    def test_drain_pending_default_is_empty(self):
        with JoinEstimationEngine(_config()) as engine:
            engine.ingest(_events(3))
            assert engine.drain_pending() == []

    def test_sharded_drain_pending_recovers_buffered_rows(self):
        config = _config(backend="sharded", options={"num_shards": 2, "batch_size": 1000})
        with JoinEstimationEngine(config) as engine:
            engine.ingest(_events(4))  # buffered in the router, not flushed
            rows = engine.drain_pending()
            assert len(rows) == 4
            assert engine.drain_pending() == []

    def test_quiesce_makes_auto_estimates_read_only(self):
        with JoinEstimationEngine(_config()) as engine:
            engine.ingest(_events(60))
            engine.flush()
            engine.quiesce()
            estimator = engine.backend._estimator
            rng_state_before = estimator._rng.bit_generator.state
            first = engine.estimate(THRESHOLD, seed=5, mode="auto")
            assert estimator._rng.bit_generator.state == rng_state_before, (
                "auto estimate consumed the maintenance rng after quiesce"
            )
            again = engine.estimate(THRESHOLD, seed=5, mode="auto")
            assert first.value == again.value


# ----------------------------------------------------------------------
# the server and client, end to end
# ----------------------------------------------------------------------
@pytest.fixture
def server():
    srv = EstimationServer(_config(), queue_depth=32, max_estimates=8).start()
    yield srv
    srv.shutdown()


class TestServerRoundtrip:
    @pytest.mark.timeout(60)
    def test_ingest_estimate_flush_stats_ping(self, server):
        events = _events(50)
        with ServeClient(server.address) as client:
            assert client.server_backend == "streaming"
            assert client.ingest(events) == 50
            assert client.last_epoch == 1
            result = client.estimate(THRESHOLD, seed=3, mode="exact")
            assert result.value >= 0.0
            assert result.provenance.seed == 3
            assert result.provenance.backend == "streaming"
            assert client.flush() == 2
            described = client.describe()
            assert described["describe"]["size"] == 50
            stats = client.stats()
            assert stats["server"]["epoch"] == 2
            assert stats["server"]["queue_capacity"] == 32
            assert stats["server"]["broken"] is False
            assert stats["engine"]["backend"] == "streaming"
            pong = client.ping()
            assert pong["pid"] == os.getpid()

    @pytest.mark.timeout(60)
    def test_acknowledged_writes_are_immediately_visible(self, server):
        with ServeClient(server.address) as writer, ServeClient(server.address) as reader:
            writer.ingest(_events(30))
            # no flush: the ingest ack means the epoch is already published
            assert reader.describe()["describe"]["size"] == 30

    @pytest.mark.timeout(60)
    def test_single_event_and_collection_ingest(self, server):
        rng = np.random.default_rng(8)
        dense = (rng.random((12, DIMENSION)) < 0.5) * rng.random((12, DIMENSION))
        dense[dense.sum(axis=1) == 0.0, 0] = 1.0
        with ServeClient(server.address) as client:
            assert client.ingest(Insert(dense[0])) == 1
            assert client.ingest(VectorCollection.from_dense(dense[1:])) == 11
            assert client.describe()["describe"]["size"] == 12

    @pytest.mark.timeout(60)
    def test_rejected_event_reports_error_without_poisoning(self, server):
        with ServeClient(server.address) as client:
            client.ingest(_events(5))
            with pytest.raises(ValidationError):
                client.ingest(Delete(10**6))
            # the server is not broken: further writes and reads succeed
            assert client.ingest(_events(3, seed=9)) == 3
            assert client.describe()["describe"]["size"] == 8

    @pytest.mark.timeout(60)
    def test_request_scoped_spans_ride_the_reply(self, server):
        with ServeClient(server.address) as client:
            client.ingest(_events(20))
            tracer = get_tracer()
            tracer.drain()
            with trace("test.root") as root:
                client.estimate(THRESHOLD, seed=1, mode="exact")
            spans = tracer.drain()
            names = {span.name for span in spans if span.trace_id == root.trace_id}
            assert "serve.estimate" in names


class TestConcurrentReaders:
    @pytest.mark.timeout(120)
    def test_concurrent_estimates_bit_identical_to_direct_engine(self, server):
        events = _events(200)
        with ServeClient(server.address) as client:
            client.ingest(events)
        direct = _direct_engine(events)
        expected = {
            seed: direct.estimate(EstimateRequest(THRESHOLD, seed=seed, mode="exact")).value
            for seed in range(8)
        }
        direct.close()
        answers: dict = {}
        errors: list = []

        def reader(seed: int) -> None:
            try:
                with ServeClient(server.address) as client:
                    for _ in range(3):
                        result = client.estimate(THRESHOLD, seed=seed, mode="exact")
                        assert result.provenance.seed == seed
                        answers.setdefault(seed, set()).add(result.value)
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [threading.Thread(target=reader, args=(seed,)) for seed in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        for seed, values in answers.items():
            assert values == {expected[seed]}, (
                f"seed {seed}: concurrent answers {values} != direct "
                f"{expected[seed]}"
            )

    @pytest.mark.timeout(120)
    def test_auto_mode_is_stable_under_concurrency(self, server):
        with ServeClient(server.address) as client:
            client.ingest(_events(150))
        values = set()
        errors: list = []

        def reader() -> None:
            try:
                with ServeClient(server.address) as client:
                    for _ in range(5):
                        values.add(client.estimate(THRESHOLD, seed=7, mode="auto").value)
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [threading.Thread(target=reader) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert len(values) == 1  # same seed, same epoch → same bits


class TestBackpressure:
    @pytest.mark.timeout(60)
    def test_estimate_pool_exhaustion_answers_busy(self):
        server = EstimationServer(_config(), max_estimates=2, retry_after=0.01).start()
        try:
            with ServeClient(server.address) as client:
                client.ingest(_events(20))
                for _ in range(2):
                    assert server._estimate_slots.acquire(blocking=False)
                with pytest.raises(ServerBusyError) as excinfo:
                    client.estimate(THRESHOLD, retries=0)
                assert excinfo.value.retry_after == pytest.approx(0.01)
                for _ in range(2):
                    server._estimate_slots.release()
                assert client.estimate(THRESHOLD, seed=1).value >= 0.0
        finally:
            server.shutdown()

    @pytest.mark.timeout(60)
    def test_client_retries_through_transient_busy(self):
        server = EstimationServer(_config(), max_estimates=1, retry_after=0.02).start()
        try:
            with ServeClient(server.address) as client:
                client.ingest(_events(20))
                assert server._estimate_slots.acquire(blocking=False)
                timer = threading.Timer(0.2, server._estimate_slots.release)
                timer.start()
                # retries x retry_after comfortably covers the 0.2s hold
                assert client.estimate(THRESHOLD, seed=1, retries=50).value >= 0.0
                timer.join()
        finally:
            server.shutdown()

    @pytest.mark.timeout(60)
    def test_full_write_queue_answers_busy(self, monkeypatch):
        server = EstimationServer(_config(), queue_depth=1, retry_after=0.01).start()
        try:
            gate = threading.Event()
            real_commit = server._generations.commit

            def gated_commit(batches):
                gate.wait(timeout=30.0)
                return real_commit(batches)

            monkeypatch.setattr(server._generations, "commit", gated_commit)
            outcomes: dict = {}

            def write(name: str, seed: int) -> None:
                with ServeClient(server.address) as client:
                    outcomes[name] = client.ingest(_events(2, seed=seed))

            first = threading.Thread(target=write, args=("first", 1))
            first.start()  # writer thread picks this up and parks on the gate
            time.sleep(0.2)
            second = threading.Thread(target=write, args=("second", 2))
            second.start()  # sits in the queue, filling it
            time.sleep(0.2)
            with ServeClient(server.address) as client:
                with pytest.raises(ServerBusyError) as excinfo:
                    client.ingest(_events(2, seed=3), retries=0)
            assert excinfo.value.retry_after > 0
            gate.set()
            first.join(timeout=30)
            second.join(timeout=30)
            assert outcomes == {"first": 2, "second": 2}
        finally:
            gate.set()
            server.shutdown()

    @pytest.mark.timeout(60)
    def test_draining_server_answers_busy(self):
        server = EstimationServer(_config()).start()
        try:
            with ServeClient(server.address) as client:
                client.ingest(_events(5))
                server._stopping.set()  # shutdown began; connection still open
                with pytest.raises(ServerBusyError) as excinfo:
                    client.estimate(THRESHOLD, retries=0)
                assert "draining" in str(excinfo.value)
                with pytest.raises(ServerBusyError):
                    client.ingest(_events(2, seed=4), retries=0)
        finally:
            server.shutdown()


class TestHandshake:
    @pytest.mark.timeout(60)
    def test_wrong_token_rejected(self):
        server = EstimationServer(_config(), token="s3cret").start()
        try:
            with pytest.raises(ClusterError, match="token"):
                ServeClient(server.address, token="wrong")
            with pytest.raises(ClusterError, match="token"):
                ServeClient(server.address)
            with ServeClient(server.address, token="s3cret") as client:
                assert client.ping()["pid"] == os.getpid()
        finally:
            server.shutdown()

    @pytest.mark.timeout(60)
    def test_protocol_mismatch_rejected(self):
        server = EstimationServer(_config()).start()
        try:
            conn = Connection(socket.create_connection(server.address, timeout=10))
            try:
                with pytest.raises(ClusterError, match="protocol"):
                    conn.request("hello", {"protocol": PROTOCOL_VERSION + 1})
            finally:
                conn.close()
        finally:
            server.shutdown()


class TestServerDrain:
    @pytest.mark.timeout(60)
    def test_shutdown_surfaces_stranded_rows_after_failed_commit(self):
        """Satellite: the server drains before engine close on shutdown."""
        config = _config(backend="sharded", options={"num_shards": 2, "batch_size": 1000})
        server = EstimationServer(config).start()

        def explode(*_args, **_kwargs):
            raise RuntimeError("transport failure mid-commit")

        for shard in server._generations._pending.backend._index.shards:
            shard.index.insert_many_prepared = explode
        with ServeClient(server.address) as client:
            with pytest.raises(ClusterError, match="mid-commit"):
                client.ingest(_events(5))
            # the server survives in read-only mode on the stable epoch
            assert client.stats()["server"]["broken"] is True
            with pytest.raises(ServeError):
                client.ingest(_events(2, seed=4))
        with pytest.raises(StrandedWritesError) as excinfo:
            server.shutdown()
        assert len(excinfo.value.pending_rows) == 5
        assert len(server.stranded_rows) == 5
        server.shutdown()  # idempotent after the drain

    @pytest.mark.timeout(120)
    def test_sigterm_drains_cleanly(self, tmp_path):
        """Satellite: SIGTERM → graceful drain → exit 0, via the CLI."""
        config_path = tmp_path / "engine.json"
        config_path.write_text(
            '{"backend": "streaming", "num_hashes": 10, "seed": 23, "dimension": 16}'
        )
        src_root = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src_root) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--config", str(config_path),
             "--listen", "127.0.0.1:0"],
            stdout=subprocess.PIPE, text=True, env=env,
        )
        try:
            line = proc.stdout.readline()
            match = re.match(r"serving on ([\d.]+):(\d+)", line)
            assert match, f"no readiness line, got {line!r}"
            address = (match.group(1), int(match.group(2)))
            with ServeClient(address) as client:
                assert client.ingest(_events(30)) == 30
                value = client.estimate(THRESHOLD, seed=2, mode="exact").value
            direct = _direct_engine(_events(30))
            expected = direct.estimate(
                EstimateRequest(THRESHOLD, seed=2, mode="exact")
            ).value
            direct.close()
            assert value == expected
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
            assert proc.returncode == 0, f"daemon exited {proc.returncode}: {out}"
            assert "drained cleanly" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)


class TestProcessClusterFront:
    @pytest.mark.timeout(300)
    def test_server_fronts_a_process_cluster(self):
        """The daemon can wrap the multi-process backend transparently."""
        dimension = 12
        config = EngineConfig(
            backend="process", num_hashes=8, seed=31, dimension=dimension,
            options={"num_shards": 2},
        )
        events = _events(40, seed=4, dimension=dimension)
        server = EstimationServer(config, max_estimates=4).start()
        try:
            with ServeClient(server.address) as client:
                assert client.server_backend == "process"
                assert client.ingest(events) == 40
                expected = client.estimate(THRESHOLD, seed=6, mode="exact").value
            # process-backed reads are serialised (no concurrent-read
            # capability) but stay correct and bit-stable under threads
            values = set()
            errors: list = []

            def reader() -> None:
                try:
                    with ServeClient(server.address) as client:
                        values.add(
                            client.estimate(THRESHOLD, seed=6, mode="exact").value
                        )
                except Exception as error:  # noqa: BLE001 - surfaced below
                    errors.append(error)

            threads = [threading.Thread(target=reader) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not errors
            assert values == {expected}
        finally:
            server.shutdown()
        # PR 5's guarantee carries over the serve boundary: exact-mode
        # process-cluster estimates are bit-identical to unsharded
        direct = _direct_engine(
            events,
            EngineConfig(backend="streaming", num_hashes=8, seed=31, dimension=dimension),
        )
        assert direct.estimate(EstimateRequest(THRESHOLD, seed=6, mode="exact")).value == expected
        direct.close()


class TestInterleavedIngestProperty:
    POOL_SEED = 77

    @staticmethod
    def _pool() -> VectorCollection:
        rng = np.random.default_rng(TestInterleavedIngestProperty.POOL_SEED)
        dense = (rng.random((24, 8)) < 0.4) * rng.random((24, 8))
        dense[0] = dense[1]  # guarantee at least one colliding pair
        dense[dense.sum(axis=1) == 0.0, 0] = 1.0
        return VectorCollection.from_dense(dense)

    @settings(max_examples=10, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=30),
        st.integers(min_value=1, max_value=7),
    )
    def test_interleaved_serve_ingest_equals_batch_ingest(self, ops, chunk_size):
        """Hypothesis property: chunked serve-side ingest == one batch."""
        pool = self._pool()
        log = ChangeLog()
        live: list = []
        next_id = 0
        for op in ops:
            if live and op % 3 == 0:
                log.append(Delete(live.pop(op % len(live))))
            else:
                log.append(Insert(pool.row_dict(op % pool.size)))
                live.append(next_id)
                next_id += 1
        config = EngineConfig(
            backend="streaming", num_hashes=6, seed=13, dimension=pool.dimension
        )
        events = list(log)
        server = EstimationServer(config, epoch_events=5).start()
        try:
            with ServeClient(server.address) as client:
                for start in range(0, len(events), chunk_size):
                    client.ingest(events[start:start + chunk_size])
                size = client.describe()["describe"]["size"]
                mode = "exact" if size > 0 else "auto"
                served = client.estimate(0.5, seed=1, mode=mode)
        finally:
            server.shutdown()
        direct = _direct_engine(events, config)
        assert direct.backend.size == size
        if size > 0:
            expected = direct.estimate(EstimateRequest(0.5, seed=1, mode="exact"))
            assert served.value == expected.value
        else:
            assert served.value == 0.0
        direct.close()


class TestServerValidation:
    def test_constructor_rejects_bad_bounds(self):
        with pytest.raises(ValidationError):
            EstimationServer(_config(), queue_depth=0)
        with pytest.raises(ValidationError):
            EstimationServer(_config(), max_estimates=0)
        with pytest.raises(ValidationError):
            EstimationServer(_config(), epoch_events=0)

    def test_parse_address_ephemeral_opt_in(self):
        assert parse_address("127.0.0.1:0", allow_ephemeral=True) == ("127.0.0.1", 0)
        with pytest.raises(ValidationError):
            parse_address("127.0.0.1:0")

    @pytest.mark.timeout(60)
    def test_unknown_op_and_bad_payload_reported(self):
        server = EstimationServer(_config()).start()
        try:
            with ServeClient(server.address) as client:
                with pytest.raises(ClusterError, match="unknown op"):
                    client._request("nonsense")
                with pytest.raises(ValidationError, match="unknown ingest field"):
                    client._request("ingest", {"bogus": 1})
                with pytest.raises(ValidationError):
                    client.ingest([])
        finally:
            server.shutdown()


# ----------------------------------------------------------------------
# lock-order regression: the shutdown protocol's ordering contract
# ----------------------------------------------------------------------
class TestLockOrderRegression:
    @pytest.mark.timeout(60)
    def test_conn_lock_and_inflight_cond_are_never_nested(self):
        """Shutdown drains in-flight requests (``_inflight_cond``) and
        closes connections (``_conn_lock``) as *sequential* critical
        sections.  Nesting them — in either direction — would impose an
        ordering constraint on every handler thread; this pins the
        contract at runtime by running a full serve lifecycle under
        tracked locks and asserting neither edge ever appears.
        """
        from repro.analysis import lockdep

        state = lockdep.active_state()
        installed_here = state is None
        if installed_here:
            state = lockdep.install()
        try:
            server = EstimationServer(_config(), max_estimates=2).start()
            try:
                with ServeClient(server.address) as client:
                    client.ingest(_events(40))
                    client.estimate(THRESHOLD, seed=7)
                    client.flush()
            finally:
                server.shutdown()  # the sequence under regression
        finally:
            if installed_here:
                lockdep.uninstall()
        edges = state.edges()
        assert ("EstimationServer._inflight_cond", "EstimationServer._conn_lock") not in edges
        assert ("EstimationServer._conn_lock", "EstimationServer._inflight_cond") not in edges
        assert state.cycles() == []
