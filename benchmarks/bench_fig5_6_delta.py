"""E7 — Figures 5 & 6: impact of the answer-size threshold δ in SampleL.

Reproduces Appendix C.2.1: the average absolute relative error across the
threshold grid (Figure 5) and the number of thresholds with a "big"
error, Ĵ/J ≥ 10 or J/Ĵ ≥ 10 (Figure 6), for δ ∈ {0.5·log n, log n,
2·log n, √n} with m fixed at n, plus RS(pop) with m = 1.5 n as the
reference.  The paper's conclusion: very large δ (√n) is far too
conservative and causes big underestimations.
"""

from __future__ import annotations

import math

import numpy as np

from benchmarks._helpers import emit, format_table
from repro.core import LSHSSEstimator, RandomPairSampling
from repro.evaluation.metrics import count_large_errors, summarize_trials

THRESHOLDS = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]


def _evaluate(estimator, histogram, num_trials):
    """Average absolute relative error and big-error counts across the grid."""
    absolute_errors = []
    big_over = 0
    big_under = 0
    for threshold in THRESHOLDS:
        true_size = histogram.join_size(threshold)
        values = [
            estimator.estimate(threshold, random_state=seed).value for seed in range(num_trials)
        ]
        summary = summarize_trials(values, true_size)
        if math.isfinite(summary.mean_absolute_relative_error):
            absolute_errors.append(summary.mean_absolute_relative_error)
        large = count_large_errors([np.mean(values)], true_size, factor=10)
        big_over += large["overestimates"]
        big_under += large["underestimates"]
    return float(np.mean(absolute_errors)), big_over, big_under


def test_fig5_6_answer_threshold_delta(
    benchmark, dblp_collection, dblp_index, dblp_histogram, results_dir, num_trials
):
    table = dblp_index.primary_table
    n = dblp_collection.size
    log_n = math.log2(n)
    delta_settings = {
        "0.5 log n": max(1, int(round(0.5 * log_n))),
        "log n": max(1, int(round(log_n))),
        "2 log n": max(1, int(round(2 * log_n))),
        "sqrt(n)": max(1, int(round(math.sqrt(n)))),
    }

    def run():
        rows = []
        for label, delta in delta_settings.items():
            estimator = LSHSSEstimator(table, answer_threshold=delta)
            error, big_over, big_under = _evaluate(estimator, dblp_histogram, num_trials)
            rows.append([f"LSH-SS δ={label}", delta, error, big_over, big_under])
        baseline = RandomPairSampling(dblp_collection, sample_size=int(1.5 * n))
        error, big_over, big_under = _evaluate(baseline, dblp_histogram, num_trials)
        rows.append(["RS(pop) m=1.5n", "-", error, big_over, big_under])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    body = format_table(
        ["configuration", "δ", "avg |rel. error|", "# τ big overest.", "# τ big underest."],
        rows,
        float_format="{:.3f}",
    )
    emit(
        "E7_fig5_6_delta",
        "Figures 5 & 6 — impact of the answer-size threshold δ (DBLP-like)",
        body,
        results_dir,
        benchmark=benchmark,
        extra_info={"avg_error_delta_logn": rows[1][2], "avg_error_delta_sqrt_n": rows[3][2]},
    )

    by_label = {row[0]: row for row in rows}
    # δ = √n is too conservative: at least as many big underestimations as δ = log n.
    assert by_label["LSH-SS δ=sqrt(n)"][4] >= by_label["LSH-SS δ=log n"][4]
