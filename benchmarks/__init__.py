"""Benchmark suite reproducing every table and figure of the paper.

Run with::

    pytest benchmarks/ --benchmark-only

Each module maps to one table or figure of the paper (experiment ids
E1–E14 in the module docstrings; the README's "Tests and benchmarks"
section lists the suite); the rendered tables are printed and persisted
under ``benchmarks/results/``.
"""
