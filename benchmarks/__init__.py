"""Benchmark suite reproducing every table and figure of the paper.

Run with::

    pytest benchmarks/ --benchmark-only

Each module maps to one experiment of DESIGN.md §4 (E1–E14); the rendered
tables are printed and persisted under ``benchmarks/results/``.
"""
