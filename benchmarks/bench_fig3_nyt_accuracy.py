"""E4 — Figure 3: accuracy and variance on the NYT-like corpus.

Same methodology as Figure 2 but on the TF-IDF-weighted NYT-like corpus.
The paper notes LSH-SS underestimates at τ ≤ 0.5 on NYT ("not the most
interesting similarity range") and that LSH-SS(D) reduces that
underestimation; both behaviours are checked here.
"""

from __future__ import annotations

from benchmarks._helpers import accuracy_series, emit
from repro.core import CrossSampling, LSHSSEstimator, RandomPairSampling
from repro.evaluation import ExperimentRunner
from repro.evaluation.runner import records_by_estimator


def test_fig3_accuracy_and_variance(
    benchmark, nyt_collection, nyt_index, nyt_histogram, results_dir, threshold_grid, num_trials
):
    table = nyt_index.primary_table
    estimators = [
        LSHSSEstimator(table),
        LSHSSEstimator(table, dampening="auto"),
        RandomPairSampling(nyt_collection),
        CrossSampling(nyt_collection),
    ]
    runner = ExperimentRunner(
        nyt_collection,
        thresholds=threshold_grid,
        num_trials=num_trials,
        histogram=nyt_histogram,
        random_state=1,
    )

    records = benchmark.pedantic(lambda: runner.run(estimators), rounds=1, iterations=1)
    body = accuracy_series(records, "Figure 3 — relative error (over/under) and STD, NYT-like")

    grouped = records_by_estimator(records)
    lsh = grouped["LSH-SS"]
    dampened = grouped["LSH-SS(D)"]
    rs = grouped["RS(pop)"]
    emit(
        "E4_fig3_nyt_accuracy",
        "Figure 3 — accuracy and variance on NYT-like",
        body,
        results_dir,
        benchmark=benchmark,
        extra_info={
            "lsh_ss_std_at_0.9": lsh[-1].summary.std_estimate,
            "rs_pop_std_at_0.9": rs[-1].summary.std_estimate,
        },
    )

    # variance ordering at the highest threshold
    assert lsh[-1].summary.std_estimate <= rs[-1].summary.std_estimate
    # the dampened variant never underestimates more strongly than plain LSH-SS
    for plain, damp in zip(lsh, dampened):
        assert damp.summary.mean_underestimation >= plain.summary.mean_underestimation - 0.05
