"""E13 — §B.2.1: multi-table extensions (median and virtual-bucket estimators).

The paper's appendix describes two ways to exploit an ℓ-table index:
the median estimator (more reliable, same per-table accuracy) and the
virtual-bucket estimator (enlarged stratum H, useful when k is larger
than the estimation problem would like).  This benchmark compares both
against the single-table LSH-SS on the DBLP-like corpus (ℓ = 3, k = 20).
"""

from __future__ import annotations

import numpy as np

from benchmarks._helpers import emit, format_table
from repro.core import LSHSSEstimator, MedianEstimator, VirtualBucketEstimator
from repro.evaluation.metrics import summarize_trials

THRESHOLDS = [0.3, 0.5, 0.7, 0.9]


def test_multi_table_extensions(
    benchmark, dblp_multi_index, dblp_histogram, results_dir, num_trials
):
    def run():
        single = LSHSSEstimator(dblp_multi_index.primary_table)
        median = MedianEstimator(dblp_multi_index, lambda table: LSHSSEstimator(table))
        virtual = VirtualBucketEstimator(dblp_multi_index)
        rows = []
        spreads = {"LSH-SS (1 table)": [], "median (3 tables)": [], "virtual buckets (3 tables)": []}
        for threshold in THRESHOLDS:
            true_size = dblp_histogram.join_size(threshold)
            for name, estimator in (
                ("LSH-SS (1 table)", single),
                ("median (3 tables)", median),
                ("virtual buckets (3 tables)", virtual),
            ):
                values = [
                    estimator.estimate(threshold, random_state=seed).value
                    for seed in range(num_trials)
                ]
                summary = summarize_trials(values, true_size)
                spreads[name].append(summary.std_estimate)
                rows.append(
                    [
                        name,
                        f"{threshold:.1f}",
                        true_size,
                        summary.mean_estimate,
                        100 * summary.mean_overestimation,
                        100 * summary.mean_underestimation,
                        summary.std_estimate,
                    ]
                )
        return rows, {name: float(np.mean(values)) for name, values in spreads.items()}

    rows, mean_spreads = benchmark.pedantic(run, rounds=1, iterations=1)

    body = format_table(
        ["estimator", "tau", "true J", "mean est.", "overest. %", "underest. %", "STD"],
        rows,
        float_format="{:.1f}",
    )
    emit(
        "E13_multi_table",
        "§B.2.1 — median and virtual-bucket estimators vs single table (DBLP-like)",
        body,
        results_dir,
        benchmark=benchmark,
        extra_info=mean_spreads,
    )

    # The median estimator's average spread should not exceed the single
    # table's by more than a small factor (it is designed to be more reliable).
    assert mean_spreads["median (3 tables)"] <= 1.5 * mean_spreads["LSH-SS (1 table)"]
    # The virtual stratum H is strictly larger than a single table's stratum H.
    virtual = VirtualBucketEstimator(dblp_multi_index)
    assert (
        virtual.num_virtual_collision_pairs
        >= dblp_multi_index.primary_table.num_collision_pairs
    )
