"""E17 — multi-process shard serving: merge fidelity + ingest throughput gates.

Two acceptance gates for the ``process`` cluster backend (``repro.cluster``):

1. **Merge fidelity** — after replaying a churn log through a process
   cluster (coordinator + one worker process per shard), the exact-mode
   estimate must be **bit-identical** to an unsharded streaming
   estimator's for the same seed, with identical strata.  This is the
   acceptance criterion that the process boundary adds transport, never
   arithmetic.
2. **Ingest throughput** — multi-process ingest must be ≥ the in-process
   ``ShardRouter`` at S = 4.  The in-process side is measured as the
   wall clock one Python process actually delivers (GIL-bound shard
   work).  The cluster side uses the same deployment model as
   ``bench_sharding``: one core per worker, so steady-state throughput
   is bounded by the slowest stage — ``rows / max(coordinator stage,
   slowest worker stage)`` — with the coordinator stage (hash +
   partition + pickle + merge bookkeeping) derived from wall clock minus
   reply-blocked time, and each worker stage measured *inside* the
   worker process.  (Measured cluster wall clock is also reported; on a
   single-core CI runner it cannot express the parallelism, which is
   exactly why the per-stage model is the gated quantity — the same
   reasoning bench_sharding documents for threads.)
   Gate: modeled multi-process throughput ≥ ``REPRO_BENCH_CLUSTER_GATE``
   (default 1.0) × in-process wall-clock throughput.

Sizes scale down via ``REPRO_BENCH_CLUSTER_N`` / ``REPRO_BENCH_CLUSTER_OPS``
for the CI smoke run.  ``BENCH_cluster.json`` is the CI artifact.
"""

from __future__ import annotations

import os
import time

import pytest
from scipy import sparse

from benchmarks._helpers import churn_log, emit, env_float, env_int, format_table
from repro.cluster import ClusterCoordinator
from repro.engine import EngineConfig, JoinEstimationEngine
from repro.shard import ShardedMutableIndex, ShardRouter
from repro.streaming import MutableLSHIndex, StreamingEstimator

NUM_HASHES = 16
SEED = 401
THRESHOLD = 0.7
NUM_SHARDS = 4
BATCH_SIZE = 512
REQUEST_TIMEOUT = 300.0

# hard SIGALRM deadline per test (benchmarks/conftest.py binds the shared
# timeout hook): a deadlocked worker fails the gate fast, never hangs CI
pytestmark = pytest.mark.timeout(600)


def _ingest_rows(collection, rows: int):
    repeats = rows // collection.size + 1
    matrix = sparse.vstack([collection.matrix] * repeats, format="csr")[:rows]
    return [matrix[i] for i in range(rows)]


# ----------------------------------------------------------------------
# Gate 1: exact-mode estimates bit-identical to an unsharded estimator
# ----------------------------------------------------------------------
def test_cluster_exact_estimates_bit_identical(benchmark, dblp_collection, results_dir):
    operations = env_int("REPRO_BENCH_CLUSTER_OPS", 800)
    log = churn_log(dblp_collection, operations, seed=SEED)

    unsharded = MutableLSHIndex(
        dblp_collection.dimension, num_hashes=NUM_HASHES, random_state=SEED + 1
    )
    log.replay(unsharded)
    reference = StreamingEstimator(unsharded, random_state=SEED + 2)

    config = EngineConfig(
        backend="process",
        num_hashes=NUM_HASHES,
        seed=SEED,
        dimension=dblp_collection.dimension,
        options={
            "shards": NUM_SHARDS,
            "batch_size": 64,
            "request_timeout": REQUEST_TIMEOUT,
        },
    )
    rows = []
    with JoinEstimationEngine(config) as engine:
        engine.ingest(log)
        engine.flush()
        assert engine.size == unsharded.size
        cluster = engine.backend.index
        assert cluster.num_collision_pairs == unsharded.num_collision_pairs
        assert cluster.num_non_collision_pairs == unsharded.num_non_collision_pairs
        for trial_seed in (5, 19, 73):
            ours = engine.estimate(THRESHOLD, seed=trial_seed, mode="exact")
            theirs = reference.estimate(
                THRESHOLD, random_state=trial_seed, mode="exact"
            )
            identical = ours.value == theirs.value
            rows.append([trial_seed, theirs.value, ours.value, str(identical)])
            assert identical, (
                f"process-cluster exact estimate {ours.value!r} != unsharded "
                f"{theirs.value!r} at seed {trial_seed}"
            )
        merged = engine.estimate(THRESHOLD, seed=5, mode="merged")
        assert merged.value >= 0.0

    body = format_table(
        ["seed", "unsharded exact J", "process-cluster exact J", "bit-identical"],
        rows,
        float_format="{:.6f}",
        title=(
            f"{operations}-op churn, S={NUM_SHARDS} worker processes, "
            f"k={NUM_HASHES}, τ={THRESHOLD}"
        ),
    )
    emit(
        "E17_cluster_fidelity",
        "E17a — process-cluster exact estimates are bit-identical",
        body,
        results_dir,
        benchmark=benchmark,
        extra_info={"operations": operations, "num_shards": NUM_SHARDS, "identical": True},
    )
    benchmark(lambda: None)


# ----------------------------------------------------------------------
# Gate 2: multi-process ingest ≥ the in-process ShardRouter at S = 4
# ----------------------------------------------------------------------
def _inprocess_wall_throughput(rows, dimension: float) -> float:
    index = ShardedMutableIndex(
        dimension,
        num_shards=NUM_SHARDS,
        num_hashes=NUM_HASHES,
        random_state=SEED,
        shard_estimators=True,
    )
    router = ShardRouter(index, batch_size=BATCH_SIZE)
    started = time.perf_counter()
    for row in rows:
        router.insert(row)
    router.close()
    return len(rows) / (time.perf_counter() - started)


def _cluster_throughputs(rows, dimension: float):
    """(modeled one-core-per-worker throughput, measured wall throughput)."""
    cluster = ClusterCoordinator(
        dimension,
        num_shards=NUM_SHARDS,
        num_hashes=NUM_HASHES,
        random_state=SEED,
        shard_estimators=True,
        request_timeout=REQUEST_TIMEOUT,
    )
    try:
        router = ShardRouter(cluster, batch_size=BATCH_SIZE, max_workers=0)
        blocked_before = sum(handle.blocked_seconds for handle in cluster._handles)
        started = time.perf_counter()
        for row in rows:
            router.insert(row)
        router.close()
        wall = time.perf_counter() - started
        blocked = (
            sum(handle.blocked_seconds for handle in cluster._handles) - blocked_before
        )
        coordinator_stage = max(wall - blocked, 1e-9)
        worker_stage = max(
            shard.index.worker_ingest_seconds for shard in cluster.shards
        )
        bound = max(coordinator_stage, worker_stage)
        return (
            len(rows) / bound,
            len(rows) / wall,
            coordinator_stage,
            worker_stage,
        )
    finally:
        cluster.close()


def test_cluster_ingest_throughput(benchmark, dblp_collection, results_dir):
    num_rows = env_int("REPRO_BENCH_CLUSTER_N", 6000)
    gate = env_float("REPRO_BENCH_CLUSTER_GATE", 1.0)
    rows = _ingest_rows(dblp_collection, num_rows)

    inprocess = _inprocess_wall_throughput(rows, dblp_collection.dimension)
    modeled, wall, coordinator_stage, worker_stage = _cluster_throughputs(
        rows, dblp_collection.dimension
    )
    ratio = modeled / inprocess

    body = format_table(
        ["configuration", "rows/s", "vs in-process"],
        [
            [f"in-process ShardRouter (S={NUM_SHARDS}, wall clock)", inprocess, 1.0],
            [
                f"process cluster (modeled, 1 core/worker; coord {coordinator_stage:.2f}s"
                f" / worker {worker_stage:.2f}s)",
                modeled,
                ratio,
            ],
            [
                f"process cluster (wall clock, {os.cpu_count()} host core(s))",
                wall,
                wall / inprocess,
            ],
        ],
        float_format="{:.2f}",
        title=(
            f"{num_rows} rows, batch={BATCH_SIZE}, k={NUM_HASHES}, "
            f"per-shard estimators on"
        ),
    )
    emit(
        "E17_cluster_ingest",
        "E17b — multi-process ingest vs the in-process ShardRouter",
        body,
        results_dir,
        benchmark=benchmark,
        extra_info={
            "rows": num_rows,
            "inprocess_rows_per_s": round(inprocess),
            "cluster_modeled_rows_per_s": round(modeled),
            "cluster_wall_rows_per_s": round(wall),
            "ratio": round(ratio, 3),
            "gate": gate,
        },
    )
    assert ratio >= gate, (
        f"multi-process ingest ({modeled:,.0f} rows/s modeled) fell below "
        f"{gate}x the in-process ShardRouter ({inprocess:,.0f} rows/s): "
        f"ratio {ratio:.2f}"
    )
    benchmark(lambda: None)
