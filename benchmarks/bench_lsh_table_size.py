"""E6 — §6.3 table: LSH table size as a function of k.

Reproduces the small table in §6.3 reporting the space occupied by an LSH
table for k ∈ {10, 20, 30, 40, 50} (g values + bucket counts + vector
ids, ignoring implementation overheads).  The size must grow with k
because more hash functions create more (and therefore smaller) buckets,
each of which stores its k-value key.
"""

from __future__ import annotations

from benchmarks._helpers import emit, format_table
from repro.lsh import LSHTable, SignRandomProjectionFamily

K_VALUES = [10, 20, 30, 40, 50]


def test_lsh_table_size_vs_k(benchmark, dblp_collection, results_dir):
    def run():
        rows = []
        for num_hashes in K_VALUES:
            family = SignRandomProjectionFamily(num_hashes, random_state=200 + num_hashes)
            table = LSHTable(family, dblp_collection)
            rows.append(
                {
                    "k": num_hashes,
                    "buckets": table.num_buckets,
                    "size_mb": table.memory_estimate_bytes() / 1e6,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    body = format_table(
        ["k", "non-empty buckets", "size (MB)"],
        [[row["k"], row["buckets"], row["size_mb"]] for row in rows],
        float_format="{:.3f}",
    )
    emit(
        "E6_lsh_table_size",
        "§6.3 — LSH table size vs number of hash functions k (DBLP-like)",
        body,
        results_dir,
        benchmark=benchmark,
        extra_info={"size_mb_k10": rows[0]["size_mb"], "size_mb_k50": rows[-1]["size_mb"]},
    )

    sizes = [row["size_mb"] for row in rows]
    buckets = [row["buckets"] for row in rows]
    assert all(a <= b for a, b in zip(sizes, sizes[1:]))
    # bucket counts grow with k until they saturate near n; once saturated,
    # different random hash draws can shift the count by a handful of buckets
    assert all(b >= 0.99 * a for a, b in zip(buckets, buckets[1:]))
