"""E20 — serving: estimate latency and throughput under mixed load.

Acceptance gates for :mod:`repro.serve` (the ``repro serve`` daemon):

1. **Latency / throughput under mixed load** — with one writer thread
   ingesting change batches and several reader threads estimating
   concurrently (each over its own connection, the documented client
   model), the p50 and p99 estimate round-trip latencies and the overall
   estimate throughput must stay inside the gates.  Defaults are sized
   for a noisy shared CI runner and adjustable via
   ``REPRO_BENCH_SERVE_P50_MS`` / ``REPRO_BENCH_SERVE_P99_MS`` /
   ``REPRO_BENCH_SERVE_MIN_RPS``.
2. **Bit-identity across the serve boundary** — after the load phase the
   server must answer exact-mode estimates **bit-identically** to a
   direct in-process engine fed the same event sequence: the epoch
   handoff, the wire round trip, and request concurrency must never
   touch the estimator's arithmetic.  (The same per-seed reproducibility
   the CI ``serve-smoke`` job checks end-to-end through the CLI daemon.)

Load shape is fixed counts, not wall-clock, so the request mix is
deterministic; scale via ``REPRO_BENCH_SERVE_READS`` (estimates per
reader) and ``REPRO_BENCH_SERVE_WRITES`` (writer batches).  Corpus size
scales via ``REPRO_BENCH_DBLP_N`` for the CI smoke run.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from benchmarks._helpers import emit, env_float, env_int, format_table
from repro.engine import EngineConfig, EstimateRequest, JoinEstimationEngine
from repro.serve import EstimationServer, ServeClient
from repro.streaming import Insert

NUM_HASHES = 16
SEED = 617
THRESHOLD = 0.7
READERS = 4
EVENTS_PER_BATCH = 25
IDENTITY_SEEDS = range(5)


def _percentile(values, q: float) -> float:
    return float(np.percentile(np.asarray(values, dtype=float), q))


@pytest.mark.timeout(600)
def test_serve_mixed_load_latency_and_bit_identity(
    benchmark, dblp_collection, results_dir
):
    p50_gate_ms = env_float("REPRO_BENCH_SERVE_P50_MS", 250.0)
    p99_gate_ms = env_float("REPRO_BENCH_SERVE_P99_MS", 2000.0)
    min_rps = env_float("REPRO_BENCH_SERVE_MIN_RPS", 10.0)
    reads_per_reader = env_int("REPRO_BENCH_SERVE_READS", 60)
    write_batches = env_int("REPRO_BENCH_SERVE_WRITES", 20)

    dimension = dblp_collection.dimension
    config = EngineConfig(
        backend="streaming", num_hashes=NUM_HASHES, seed=SEED, dimension=dimension
    )
    # writer events recycle the corpus's own rows (as sparse mappings):
    # realistic density/similarity structure, and a deterministic event
    # sequence the bit-identity phase can replay into a direct engine
    matrix = dblp_collection.matrix.tocsr()

    def _event(index: int) -> Insert:
        row = matrix[index % dblp_collection.size]
        return Insert({int(j): float(v) for j, v in zip(row.indices, row.data)})

    batches = [
        [_event(batch * EVENTS_PER_BATCH + i) for i in range(EVENTS_PER_BATCH)]
        for batch in range(write_batches)
    ]

    server = EstimationServer(
        config, queue_depth=64, max_estimates=READERS * 2
    ).start()
    estimate_seconds: list = []
    ingest_seconds: list = []
    errors: list = []
    try:
        with ServeClient(server.address) as seeder:
            seeder.ingest(dblp_collection)

        def writer() -> None:
            try:
                with ServeClient(server.address) as client:
                    for batch in batches:
                        started = time.perf_counter()
                        client.ingest(batch)
                        ingest_seconds.append(time.perf_counter() - started)
            except Exception as error:  # noqa: BLE001 - surfaced after join
                errors.append(error)

        def reader(offset: int) -> None:
            try:
                with ServeClient(server.address) as client:
                    for call in range(reads_per_reader):
                        request = EstimateRequest(
                            THRESHOLD, seed=offset * reads_per_reader + call,
                            mode="auto",
                        )
                        started = time.perf_counter()
                        client.estimate(request)
                        estimate_seconds.append(time.perf_counter() - started)
            except Exception as error:  # noqa: BLE001 - surfaced after join
                errors.append(error)

        def run() -> float:
            threads = [threading.Thread(target=writer)]
            threads += [
                threading.Thread(target=reader, args=(index,))
                for index in range(READERS)
            ]
            started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            return time.perf_counter() - started

        elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
        assert not errors, f"load generator failed: {errors[0]!r}"

        # --- gate 2: bit-identity across the serve boundary -----------
        with ServeClient(server.address) as client:
            client.flush()
            served = {
                seed: client.estimate(THRESHOLD, seed=seed, mode="exact").value
                for seed in IDENTITY_SEEDS
            }
    finally:
        server.shutdown()

    direct = JoinEstimationEngine(config).open()
    direct.ingest(dblp_collection)
    for batch in batches:
        direct.ingest(batch)
    direct.flush()
    expected = {
        seed: direct.estimate(EstimateRequest(THRESHOLD, seed=seed, mode="exact")).value
        for seed in IDENTITY_SEEDS
    }
    direct.close()
    mismatches = {
        seed: (served[seed], expected[seed])
        for seed in IDENTITY_SEEDS
        if served[seed] != expected[seed]
    }

    p50_ms = _percentile(estimate_seconds, 50) * 1e3
    p99_ms = _percentile(estimate_seconds, 99) * 1e3
    rps = len(estimate_seconds) / elapsed
    rows = [
        ["estimate", len(estimate_seconds), f"{p50_ms:.2f}",
         f"{p99_ms:.2f}", f"{rps:.1f}"],
        ["ingest", len(ingest_seconds),
         f"{_percentile(ingest_seconds, 50) * 1e3:.2f}",
         f"{_percentile(ingest_seconds, 99) * 1e3:.2f}",
         f"{len(ingest_seconds) / elapsed:.1f}"],
    ]
    body = format_table(
        ["op", "requests", "p50 ms", "p99 ms", "req/s"],
        rows,
        title=f"Serve mixed load — n={dblp_collection.size}, k={NUM_HASHES}, "
        f"{READERS} readers × {reads_per_reader} estimates + 1 writer × "
        f"{write_batches} batches of {EVENTS_PER_BATCH} events "
        f"(gates: p50 ≤ {p50_gate_ms:.0f} ms, p99 ≤ {p99_gate_ms:.0f} ms, "
        f"≥ {min_rps:.0f} req/s); exact estimates bit-identical to a direct "
        f"engine: {'yes' if not mismatches else 'NO'}",
    )
    emit(
        "E20_serve_mixed_load", "E20 — serving under mixed load", body, results_dir,
        benchmark=benchmark,
        extra_info={
            "p50_ms": p50_ms,
            "p99_ms": p99_ms,
            "estimate_rps": rps,
            "bit_identical": not mismatches,
        },
    )
    assert not mismatches, (
        f"served exact estimates diverged from the direct engine: {mismatches}"
    )
    assert p50_ms <= p50_gate_ms, (
        f"estimate p50 {p50_ms:.2f} ms exceeds the {p50_gate_ms:.0f} ms gate"
    )
    assert p99_ms <= p99_gate_ms, (
        f"estimate p99 {p99_ms:.2f} ms exceeds the {p99_gate_ms:.0f} ms gate"
    )
    assert rps >= min_rps, (
        f"estimate throughput {rps:.1f} req/s under the {min_rps:.0f} req/s gate"
    )
