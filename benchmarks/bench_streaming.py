"""E13 — streaming subsystem: incremental maintenance vs full rebuild.

The static pipeline pays a full ``O(n·k)`` index rebuild before it can
serve an estimate over a changed collection; the streaming subsystem
applies each insert/delete in ``O(k)`` amortised and keeps the strata
bookkeeping exact.  This benchmark replays the same update+query
workload both ways across update:query ratios and reports the speedup
of the maintenance work (updates for the streaming path vs rebuilds for
the static path).

Acceptance gate: at a 10:1 update:query ratio, incremental updates must
be at least 5× cheaper than full rebuilds.
"""

from __future__ import annotations

import os
import time
from typing import List, Tuple

import numpy as np

from benchmarks._helpers import emit, format_table
from repro.core import LSHSSEstimator
from repro.lsh import LSHIndex
from repro.streaming import MutableLSHIndex, StreamingEstimator

THRESHOLD = 0.7
NUM_HASHES = 16
SEED = 101
# Small per-query sample budgets keep the *query* cost identical across the
# two paths, so the measured difference is the maintenance work.
SAMPLE_SIZE = 256
RATIOS = ((1, 1), (10, 1), (100, 1))
NUM_QUERIES = 8
# acceptance threshold at 10:1; overridable so noisy shared CI runners can
# run the same gate with a safety margin (locally it holds at ~7x)
SPEEDUP_GATE = float(os.environ.get("REPRO_BENCH_STREAMING_GATE", "5.0"))


def _workload(collection, num_updates: int, rng: np.random.Generator) -> List[Tuple[str, int]]:
    """An update batch: alternating deletes of live rows and fresh inserts."""
    operations: List[Tuple[str, int]] = []
    for step in range(num_updates):
        row = int(rng.integers(0, collection.size))
        operations.append(("delete" if step % 2 == 0 else "insert", row))
    return operations


def _run_incremental(collection, updates_per_query: int) -> Tuple[float, float]:
    """Returns (update_seconds, query_seconds) for the streaming path."""
    index = MutableLSHIndex.from_collection(
        collection, num_hashes=NUM_HASHES, random_state=SEED
    )
    estimator = StreamingEstimator(
        index,
        sample_size_h=SAMPLE_SIZE,
        sample_size_l=SAMPLE_SIZE,
        random_state=SEED,
    )
    rng = np.random.default_rng(SEED)
    live = list(range(collection.size))
    update_seconds = 0.0
    query_seconds = 0.0
    for query in range(NUM_QUERIES):
        operations = _workload(collection, updates_per_query, rng)
        start = time.perf_counter()
        for op, row in operations:
            if op == "delete" and len(live) > 2:
                index.delete(live.pop(int(rng.integers(0, len(live)))))
            else:
                live.append(index.insert(collection.row(row)))
        update_seconds += time.perf_counter() - start
        start = time.perf_counter()
        estimator.estimate(THRESHOLD, random_state=query)
        query_seconds += time.perf_counter() - start
    return update_seconds, query_seconds


def _run_rebuild(collection, updates_per_query: int) -> Tuple[float, float]:
    """Returns (rebuild_seconds, query_seconds) for the static path.

    The static path tracks the same logical collection; before each query
    it must rebuild the LSH index over the current rows from scratch.
    """
    rng = np.random.default_rng(SEED)
    mirror = MutableLSHIndex.from_collection(  # cheap row bookkeeping only
        collection, num_hashes=1, random_state=SEED
    )
    live = list(range(collection.size))
    rebuild_seconds = 0.0
    query_seconds = 0.0
    for query in range(NUM_QUERIES):
        for op, row in _workload(collection, updates_per_query, rng):
            if op == "delete" and len(live) > 2:
                mirror.delete(live.pop(int(rng.integers(0, len(live)))))
            else:
                live.append(mirror.insert(collection.row(row)))
        current, _ = mirror.to_collection()
        start = time.perf_counter()
        index = LSHIndex(current, num_hashes=NUM_HASHES, random_state=SEED)
        rebuild_seconds += time.perf_counter() - start
        estimator = LSHSSEstimator(
            index.primary_table, sample_size_h=SAMPLE_SIZE, sample_size_l=SAMPLE_SIZE
        )
        start = time.perf_counter()
        estimator.estimate(THRESHOLD, random_state=query)
        query_seconds += time.perf_counter() - start
    return rebuild_seconds, query_seconds


def test_incremental_vs_rebuild(benchmark, dblp_collection, results_dir):
    """Maintenance cost across update:query ratios, with the 5× gate at 10:1."""

    def run():
        rows = []
        for updates, queries in RATIOS:
            upd_incremental, qry_incremental = _run_incremental(dblp_collection, updates)
            upd_rebuild, qry_rebuild = _run_rebuild(dblp_collection, updates)
            speedup = upd_rebuild / max(upd_incremental, 1e-9)
            rows.append(
                [
                    f"{updates}:{queries}",
                    upd_incremental * 1000.0,
                    upd_rebuild * 1000.0,
                    speedup,
                    qry_incremental * 1000.0,
                    qry_rebuild * 1000.0,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    body = format_table(
        [
            "update:query",
            "incr. updates (ms)",
            "rebuilds (ms)",
            "maint. speedup",
            "incr. queries (ms)",
            "static queries (ms)",
        ],
        rows,
        float_format="{:.2f}",
    )
    emit(
        "E13_streaming_incremental_vs_rebuild",
        "Streaming — incremental update cost vs full rebuild "
        f"(n={dblp_collection.size}, k={NUM_HASHES}, {NUM_QUERIES} queries/ratio)",
        body,
        results_dir,
        benchmark=benchmark,
        extra_info={f"speedup_{row[0]}": row[3] for row in rows},
    )
    speedup_at_10_to_1 = {row[0]: row[3] for row in rows}["10:1"]
    assert speedup_at_10_to_1 >= SPEEDUP_GATE, (
        f"incremental updates only {speedup_at_10_to_1:.1f}x cheaper than rebuild at 10:1"
    )


def test_streaming_estimates_track_exact_strata(dblp_collection):
    """Sanity: after churn the streamed strata equal a fresh build's."""
    index = MutableLSHIndex.from_collection(
        dblp_collection, num_hashes=NUM_HASHES, random_state=SEED
    )
    rng = np.random.default_rng(3)
    live = list(range(dblp_collection.size))
    for _ in range(200):
        if rng.random() < 0.5 and len(live) > 2:
            index.delete(live.pop(int(rng.integers(0, len(live)))))
        else:
            live.append(index.insert(dblp_collection.row(int(rng.integers(0, 500)))))
    final, _ = index.to_collection()
    fresh = LSHIndex(final, num_hashes=NUM_HASHES, random_state=SEED)
    assert index.num_collision_pairs == fresh.primary_table.num_collision_pairs
