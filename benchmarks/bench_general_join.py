"""E14 — §B.2.2: the general (non-self) VSJ problem.

Estimates the join size between two different collections (an "archive"
and a "new batch" drawn from the same DBLP-like corpus so that duplicate
clusters straddle the two sides) using the general LSH-SS estimator and
the random-sampling baseline, and compares against the exact cross join.
"""

from __future__ import annotations

import numpy as np

from benchmarks._helpers import emit, format_table
from repro.core import GeneralLSHSSEstimator, GeneralRandomPairSampling, PairedLSHTable
from repro.join.exact import exact_general_join_sizes
from repro.lsh import SignRandomProjectionFamily

THRESHOLDS = [0.3, 0.5, 0.7, 0.9]


def test_general_join_estimation(benchmark, dblp_collection, results_dir, num_trials):
    left = dblp_collection.subset(list(range(0, dblp_collection.size, 2)))
    right = dblp_collection.subset(list(range(1, dblp_collection.size, 2)))
    true_sizes = dict(zip(THRESHOLDS, exact_general_join_sizes(left, right, THRESHOLDS)))

    def run():
        family = SignRandomProjectionFamily(20, random_state=77)
        paired = PairedLSHTable(family, left, right)
        lsh_ss = GeneralLSHSSEstimator(paired, dampening="auto")
        rs = GeneralRandomPairSampling(left, right)
        rows = []
        for threshold in THRESHOLDS:
            true_size = int(true_sizes[threshold])
            lsh_values = [
                lsh_ss.estimate(threshold, random_state=seed).value for seed in range(num_trials)
            ]
            rs_values = [
                rs.estimate(threshold, random_state=seed).value for seed in range(num_trials)
            ]
            rows.append(
                [
                    f"{threshold:.1f}",
                    true_size,
                    float(np.mean(lsh_values)),
                    float(np.std(lsh_values)),
                    float(np.mean(rs_values)),
                    float(np.std(rs_values)),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    body = format_table(
        ["tau", "true J", "general LSH-SS mean", "LSH-SS STD", "RS mean", "RS STD"],
        rows,
        float_format="{:.1f}",
    )
    emit(
        "E14_general_join",
        "§B.2.2 — general (non-self) join estimation (DBLP-like split)",
        body,
        results_dir,
        benchmark=benchmark,
        extra_info={"lsh_ss_std_at_0.9": rows[-1][3], "rs_std_at_0.9": rows[-1][5]},
    )

    # At the highest threshold the general LSH-SS spread is below the RS spread.
    assert rows[-1][3] <= rows[-1][5] + 1e-9
    # Every estimate stays in the feasible range.
    for row in rows:
        assert 0.0 <= row[2] <= left.size * right.size
