"""E10 — Figure 9: accuracy and variance on the PUBMED-like corpus (k = 5).

Reproduces Appendix C.4: relative error and standard deviation for LSH-SS
and RS(pop) on the PUBMED-like corpus with a small k = 5 (the paper's
choice because PUBMED documents are largely dissimilar).  Expectations:
LSH-SS shows an underestimation tendency but its standard deviation at
high thresholds is far below RS's (the paper reports more than an order
of magnitude).
"""

from __future__ import annotations

import numpy as np

from benchmarks._helpers import accuracy_series, emit
from repro.core import LSHSSEstimator, RandomPairSampling
from repro.evaluation import ExperimentRunner
from repro.evaluation.runner import records_by_estimator


def test_fig9_pubmed_accuracy(
    benchmark,
    pubmed_collection,
    pubmed_index,
    pubmed_histogram,
    results_dir,
    threshold_grid,
    num_trials,
):
    table = pubmed_index.primary_table
    estimators = [LSHSSEstimator(table), RandomPairSampling(pubmed_collection)]
    runner = ExperimentRunner(
        pubmed_collection,
        thresholds=threshold_grid,
        num_trials=num_trials,
        histogram=pubmed_histogram,
        random_state=2,
    )

    records = benchmark.pedantic(lambda: runner.run(estimators), rounds=1, iterations=1)
    body = accuracy_series(records, "Figure 9 — accuracy and STD on PUBMED-like (k = 5)")

    grouped = records_by_estimator(records)
    lsh = grouped["LSH-SS"]
    rs = grouped["RS(pop)"]
    lsh_high_std = np.mean([r.summary.std_estimate for r in lsh if r.threshold >= 0.7])
    rs_high_std = np.mean([r.summary.std_estimate for r in rs if r.threshold >= 0.7])
    emit(
        "E10_fig9_pubmed",
        "Figure 9 — accuracy and variance on PUBMED-like (k = 5)",
        body,
        results_dir,
        benchmark=benchmark,
        extra_info={"lsh_ss_high_tau_std": lsh_high_std, "rs_high_tau_std": rs_high_std},
    )

    # LSH-SS spread at high thresholds is well below random sampling's.
    assert lsh_high_std < rs_high_std
