"""E1 — Table 1: stratum probabilities on the DBLP-like corpus.

Reproduces the paper's Table 1: P(T), P(T|H), P(H|T) and P(T|L) as a
function of the similarity threshold, computed exactly on the extended
LSH table (k = 20).  The paper's qualitative claims to verify:

* P(T) collapses toward zero as τ grows (naive sampling becomes hopeless),
* P(T|H) stays orders of magnitude above P(T) at high thresholds,
* P(H|T) grows with τ (at high thresholds most true pairs share a bucket),
* P(T|L) tracks P(T) (stratum L behaves like the whole population).
"""

from __future__ import annotations

from benchmarks._helpers import emit, format_table
from repro.evaluation import empirical_stratum_probabilities


def test_table1_stratum_probabilities(
    benchmark, dblp_index, dblp_histogram, results_dir, threshold_grid
):
    table = dblp_index.primary_table

    def run():
        return empirical_stratum_probabilities(
            table, threshold_grid, histogram=dblp_histogram
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    body = format_table(
        ["tau", "P(T)", "P(T|H)", "P(H|T)", "P(T|L)", "J", "N_H"],
        [
            [
                f"{row.threshold:.1f}",
                row.probability_true,
                row.probability_true_given_h,
                row.probability_h_given_true,
                row.probability_true_given_l,
                row.join_size,
                row.num_collision_pairs,
            ]
            for row in rows
        ],
    )
    emit(
        "E1_table1_probabilities",
        "Table 1 — stratum probabilities vs threshold (DBLP-like, k=20)",
        body,
        results_dir,
        benchmark=benchmark,
        extra_info={
            "alpha_at_0.9": rows[-1].probability_true_given_h,
            "h_given_t_at_0.9": rows[-1].probability_h_given_true,
        },
    )

    # Qualitative assertions mirroring the paper's reading of Table 1.
    by_threshold = {round(row.threshold, 1): row for row in rows}
    assert by_threshold[0.9].probability_true < 1e-3
    assert by_threshold[0.9].probability_true_given_h > 100 * by_threshold[0.9].probability_true
    assert by_threshold[0.9].probability_h_given_true > by_threshold[0.3].probability_h_given_true
