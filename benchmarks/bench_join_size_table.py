"""E2 — §6.2 join-size / selectivity table on the DBLP-like corpus.

Reproduces the table in §6.2 listing the true join size J and its
selectivity at τ ∈ {0.1, 0.3, 0.5, 0.7, 0.9}.  The paper's point is the
dramatic range: ~33 % selectivity at τ = 0.1 down to ~1e-7 at τ = 0.9 on
real DBLP.  At laptop scale the range is narrower but still spans several
orders of magnitude, which is what the estimators must cope with.
"""

from __future__ import annotations

from benchmarks._helpers import emit, format_table


def test_join_size_and_selectivity_table(benchmark, dblp_collection, dblp_histogram, results_dir):
    thresholds = [0.1, 0.3, 0.5, 0.7, 0.9]

    def run():
        return {t: dblp_histogram.join_size(t) for t in thresholds}

    sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    total_pairs = dblp_collection.total_pairs

    body = format_table(
        ["tau", "J", "selectivity %"],
        [
            [f"{threshold:.1f}", size, 100.0 * size / total_pairs]
            for threshold, size in sizes.items()
        ],
        float_format="{:.6g}",
    )
    emit(
        "E2_join_size_table",
        "§6.2 join size and selectivity vs threshold (DBLP-like)",
        body,
        results_dir,
        benchmark=benchmark,
        extra_info={"selectivity_0.1": sizes[0.1] / total_pairs, "selectivity_0.9": sizes[0.9] / total_pairs},
    )

    # The join size must span several orders of magnitude across the range.
    assert sizes[0.1] > 1000 * sizes[0.9] > 0
