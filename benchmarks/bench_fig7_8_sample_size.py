"""E8 — Figures 7 & 8: impact of the sample size m.

Reproduces Appendix C.2.2: average absolute relative error (Figure 7) and
the number of thresholds with big errors (Figure 8) as the per-stratum
sample size m sweeps {√n, n/log n, 0.5n, n, 2n, n·log n}, for LSH-SS and
RS(pop) (whose budget is 1.5·m).  The paper's conclusions: m < 0.5 n
causes serious underestimation for both algorithms, and m = n·log n
removes LSH-SS's big errors at the cost of a log n runtime factor.
"""

from __future__ import annotations

import math

import numpy as np

from benchmarks._helpers import emit, format_table
from repro.core import LSHSSEstimator, RandomPairSampling
from repro.evaluation.metrics import count_large_errors, summarize_trials

THRESHOLDS = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]


def _evaluate(estimator, histogram, num_trials):
    absolute_errors = []
    big_over = 0
    big_under = 0
    for threshold in THRESHOLDS:
        true_size = histogram.join_size(threshold)
        values = [
            estimator.estimate(threshold, random_state=seed).value for seed in range(num_trials)
        ]
        summary = summarize_trials(values, true_size)
        if math.isfinite(summary.mean_absolute_relative_error):
            absolute_errors.append(summary.mean_absolute_relative_error)
        large = count_large_errors([np.mean(values)], true_size, factor=10)
        big_over += large["overestimates"]
        big_under += large["underestimates"]
    return float(np.mean(absolute_errors)), big_over, big_under


def test_fig7_8_sample_size(
    benchmark, dblp_collection, dblp_index, dblp_histogram, results_dir, num_trials
):
    table = dblp_index.primary_table
    n = dblp_collection.size
    log_n = max(math.log2(n), 1.0)
    sample_settings = {
        "sqrt(n)": int(round(math.sqrt(n))),
        "n/log n": int(round(n / log_n)),
        "0.5n": int(round(0.5 * n)),
        "n": n,
        "2n": 2 * n,
        "n log n": int(round(n * log_n)),
    }

    def run():
        rows = []
        for label, sample_size in sample_settings.items():
            lsh_ss = LSHSSEstimator(
                table, sample_size_h=sample_size, sample_size_l=sample_size
            )
            rs = RandomPairSampling(dblp_collection, sample_size=int(1.5 * sample_size))
            lsh_error, lsh_over, lsh_under = _evaluate(lsh_ss, dblp_histogram, num_trials)
            rs_error, rs_over, rs_under = _evaluate(rs, dblp_histogram, num_trials)
            rows.append(
                [label, sample_size, lsh_error, lsh_over + lsh_under, rs_error, rs_over + rs_under]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    body = format_table(
        ["m", "pairs", "LSH-SS avg |err|", "LSH-SS # big", "RS avg |err|", "RS # big"],
        rows,
        float_format="{:.3f}",
    )
    emit(
        "E8_fig7_8_sample_size",
        "Figures 7 & 8 — impact of the sample size m (DBLP-like)",
        body,
        results_dir,
        benchmark=benchmark,
        extra_info={"lsh_ss_error_at_m_n": rows[3][2], "lsh_ss_error_at_m_nlogn": rows[5][2]},
    )

    by_label = {row[0]: row for row in rows}
    # larger budgets should not be (meaningfully) worse than tiny budgets
    assert by_label["n log n"][2] <= by_label["sqrt(n)"][2] + 0.25
    # and the biggest budget removes big errors at least as well as the smallest
    assert by_label["n log n"][3] <= by_label["sqrt(n)"][3]
