"""E3 — Figure 2: accuracy and variance on the DBLP-like corpus.

Reproduces Figure 2(a)/(b)/(c): relative error of overestimations,
relative error of underestimations and standard deviation of the
estimates across the threshold range, for LSH-SS, LSH-SS(D), RS(pop) and
RS(cross) with the paper's default parameters (k = 20, m_H = m_L = n,
δ = log n, m_R = 1.5 n).

Shape expectations carried over from the paper:

* LSH-SS essentially never overestimates wildly at high thresholds,
* RS(pop)/RS(cross) fluctuate between 0 and huge values at τ ≥ 0.8,
* the standard deviation of LSH-SS at high thresholds is far below RS's.
"""

from __future__ import annotations

from benchmarks._helpers import accuracy_series, emit
from repro.core import CrossSampling, LSHSSEstimator, RandomPairSampling
from repro.evaluation import ExperimentRunner
from repro.evaluation.runner import records_by_estimator


def test_fig2_accuracy_and_variance(
    benchmark, dblp_collection, dblp_index, dblp_histogram, results_dir, threshold_grid, num_trials
):
    table = dblp_index.primary_table
    estimators = [
        LSHSSEstimator(table),
        LSHSSEstimator(table, dampening="auto"),
        RandomPairSampling(dblp_collection),
        CrossSampling(dblp_collection),
    ]
    runner = ExperimentRunner(
        dblp_collection,
        thresholds=threshold_grid,
        num_trials=num_trials,
        histogram=dblp_histogram,
        random_state=0,
    )

    records = benchmark.pedantic(lambda: runner.run(estimators), rounds=1, iterations=1)

    body = accuracy_series(records, "Figure 2 — relative error (over/under) and STD, DBLP-like")
    grouped = records_by_estimator(records)
    lsh_high = [r for r in grouped["LSH-SS"] if r.threshold >= 0.8]
    rs_high = [r for r in grouped["RS(pop)"] if r.threshold >= 0.8]
    emit(
        "E3_fig2_dblp_accuracy",
        "Figure 2 — accuracy and variance on DBLP-like",
        body,
        results_dir,
        benchmark=benchmark,
        extra_info={
            "lsh_ss_std_at_0.9": lsh_high[-1].summary.std_estimate,
            "rs_pop_std_at_0.9": rs_high[-1].summary.std_estimate,
        },
    )

    # LSH-SS never overestimates by more than 2x at high thresholds...
    for record in lsh_high:
        assert record.summary.mean_overestimation < 2.0
    # ...while its spread at tau=0.9 is below the random-sampling spread.
    assert lsh_high[-1].summary.std_estimate <= rs_high[-1].summary.std_estimate
