"""E19 — observability: instrumentation overhead and cross-process traces.

Two acceptance gates for :mod:`repro.obs`:

1. **Overhead** — the estimate and ingest hot paths with observability
   *enabled* (the default: counters incremented, histograms observed,
   spans opened) must cost ≤ 3 % over the same paths with observability
   *disabled* (``repro.obs.set_enabled(False)``: every instrument is an
   early return).  Estimates are measured per call; ingest is measured
   at the engine front door's documented granularity — one
   ``engine.ingest(events)`` call per batch, which is how replay and
   bulk callers drive it and therefore where the one-span-per-call
   instrumentation actually lands.  Every call is timed twice
   back-to-back — once per mode, order alternating — so both sides of
   each paired ratio see the same few-millisecond window of CPU
   frequency drift and throttling; the gate compares the median over
   all pairs, which is robust to scheduler noise spikes.
   The gate is adjustable for noisy shared runners via
   ``REPRO_BENCH_OBS_GATE`` (a ratio; default 1.03).  Estimates must
   also be **bit-identical** whether observability is on or off —
   instrumentation must never touch the estimator's randomness or
   arithmetic.
2. **Stitched cross-process trace** — one estimate served by the
   ``process`` backend, opened under a root span, must produce a single
   trace: every collected span (coordinator side and the spans shipped
   back from every worker process in the reply envelopes) carries the
   root's ``trace_id``, and the span set covers the coordinator pid and
   all worker pids.

Corpus size scales via ``REPRO_BENCH_DBLP_N`` for the CI smoke run.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from benchmarks._helpers import emit, env_float, format_table
from repro.engine import EngineConfig, EstimateRequest, JoinEstimationEngine
from repro.obs import get_tracer, set_enabled, trace
from repro.streaming import Insert

NUM_HASHES = 16
SEED = 409
THRESHOLD = 0.7
CALLS_PER_ROUND = 20
INGEST_CALLS_PER_ROUND = 10
EVENTS_PER_INGEST = 50  # the front door's batch granularity (see docstring)
ROUNDS = 16


def _dense_rows(dimension: int, count: int, seed: int) -> list:
    rng = np.random.default_rng(seed)
    rows = (rng.random((count, dimension)) < 0.3) * rng.random((count, dimension))
    rows[rows.sum(axis=1) == 0.0, 0] = 1.0
    return [row for row in rows]


def test_obs_overhead_and_bit_identity(benchmark, dblp_collection, results_dir):
    """Gate 1: enabled-vs-disabled overhead ≤ 3 %; estimates bit-identical."""
    gate = env_float("REPRO_BENCH_OBS_GATE", 1.03)
    dimension = dblp_collection.dimension
    engine = JoinEstimationEngine(
        EngineConfig(backend="streaming", num_hashes=NUM_HASHES, seed=SEED,
                     dimension=dimension)
    ).open()
    engine.ingest(dblp_collection)
    engine.estimate(THRESHOLD)  # warm every lazy path before timing
    # ingest events recycle the corpus's own rows (as sparse mappings):
    # realistic density and similarity structure, no giant dense buffer
    matrix = dblp_collection.matrix.tocsr()

    def _event(index: int) -> Insert:
        row = matrix[index % dblp_collection.size]
        return Insert({int(j): float(v) for j, v in zip(row.indices, row.data)})

    event_counter = iter(range(10**9))

    def _timed(work) -> float:
        start = time.perf_counter()
        work()
        return time.perf_counter() - start

    def run():
        # PAIRED samples at the finest granularity the workload allows:
        # each estimate call (and each ingest batch) is timed twice
        # back-to-back — once per mode, order alternating — so the two
        # sides of every ratio see the same few-millisecond window of
        # CPU-frequency drift and cgroup throttling.  Coarser pairings
        # (whole rounds per mode) swing by several percent on shared
        # machines because the modes sample different throttle states.
        pairs = {"estimate": [], "ingest": []}
        try:
            # phase 1 — estimates only: the index does not change here,
            # so both sides of a pair run the identical seeded request
            for round_index in range(ROUNDS):
                for call in range(CALLS_PER_ROUND):
                    request = EstimateRequest(THRESHOLD, seed=call, mode="auto")
                    order = ((False, True) if (round_index + call) % 2 == 0
                             else (True, False))
                    timed = {}
                    for enabled in order:
                        set_enabled(enabled)
                        timed[enabled] = _timed(lambda: engine.estimate(request))
                    pairs["estimate"].append((timed[True], timed[False]))
            # phase 2 — ingest batches: the two sides of a pair ingest
            # different (but statistically identical) corpus rows, and
            # the index grows by only one batch between them
            for round_index in range(ROUNDS):
                for batch_index in range(INGEST_CALLS_PER_ROUND):
                    order = ((False, True) if (round_index + batch_index) % 2 == 0
                             else (True, False))
                    timed = {}
                    for enabled in order:
                        batch = [_event(next(event_counter))
                                 for _ in range(EVENTS_PER_INGEST)]
                        set_enabled(enabled)
                        timed[enabled] = _timed(lambda: engine.ingest(batch))
                    pairs["ingest"].append((timed[True], timed[False]))
        finally:
            set_enabled(True)
        return pairs

    pairs = benchmark.pedantic(run, rounds=1, iterations=1)

    def _median(values):
        ordered = sorted(values)
        middle = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[middle]
        return 0.5 * (ordered[middle - 1] + ordered[middle])

    # bit-identity: the same seeded estimate with obs on and off
    request = EstimateRequest(THRESHOLD, seed=999, mode="exact")
    value_on = engine.estimate(request).value
    set_enabled(False)
    try:
        value_off = engine.estimate(request).value
    finally:
        set_enabled(True)
    engine.close()

    rows_out, ratios = [], {}
    for path in ("estimate", "ingest"):
        # median of per-pair ratios: robust to noise spikes, centered by
        # the alternating order; the per-call columns are medians too
        ratio = _median([on / off for on, off in pairs[path]])
        on = _median([on for on, _ in pairs[path]])
        off = _median([off for _, off in pairs[path]])
        ratios[path] = ratio
        rows_out.append([
            path,
            f"{off * 1e3:.3f}",
            f"{on * 1e3:.3f}",
            f"{ratio:.4f}",
            f"{(on - off) * 1e6:+.1f}",
        ])
    body = format_table(
        ["path", "disabled ms/call", "enabled ms/call", "ratio", "overhead µs/call"],
        rows_out,
        title=f"Observability overhead — n={dblp_collection.size}, k={NUM_HASHES}, "
        f"τ={THRESHOLD}, median over {ROUNDS * CALLS_PER_ROUND} estimate / "
        f"{ROUNDS * INGEST_CALLS_PER_ROUND} ingest back-to-back pairs "
        f"(gate ≤ {gate:.2f}×); bit-identical on/off: "
        f"{'yes' if value_on == value_off else 'NO'}",
    )
    emit(
        "E19_obs_overhead", "E19 — observability overhead", body, results_dir,
        benchmark=benchmark,
        extra_info={**{f"ratio_{path}": r for path, r in ratios.items()},
                    "bit_identical": value_on == value_off},
    )
    assert value_on == value_off, (
        f"instrumentation changed the estimate: {value_on!r} (obs on) vs "
        f"{value_off!r} (obs off)"
    )
    for path, ratio in ratios.items():
        assert ratio <= gate, (
            f"{path} path observability overhead {ratio:.4f}× exceeds the "
            f"{gate:.2f}× gate"
        )


@pytest.mark.timeout(300)
def test_cross_process_stitched_trace(benchmark, results_dir):
    """Gate 2: one estimate → one trace spanning coordinator and workers."""
    dimension = 16
    num_shards = 2
    engine = JoinEstimationEngine(
        EngineConfig(backend="process", num_hashes=12, seed=SEED,
                     dimension=dimension, options={"shards": num_shards})
    ).open()
    try:
        for row in _dense_rows(dimension, 60, SEED + 2):
            engine.ingest(Insert(row))
        engine.flush()
        worker_pids = {info["pid"] for info in engine.backend.index.worker_infos}
        tracer = get_tracer()
        tracer.drain()  # start from a clean buffer

        def run():
            with trace("bench.estimate") as root:
                engine.estimate(EstimateRequest(THRESHOLD, seed=3, mode="exact"))
            return root.trace_id, tracer.drain()

        trace_id, spans = benchmark.pedantic(run, rounds=1, iterations=1)
    finally:
        engine.close()

    trace_ids = {span.trace_id for span in spans}
    pids = {span.pid for span in spans}
    names = {span.name for span in spans}
    rows = [
        ["spans collected", len(spans)],
        ["distinct trace ids", len(trace_ids)],
        ["coordinator pid seen", os.getpid() in pids],
        ["worker pids seen", f"{len(worker_pids & pids)}/{len(worker_pids)}"],
        ["worker-side span names", sum(1 for n in names if n.startswith("worker."))],
    ]
    body = format_table(
        ["check", "value"], rows,
        title=f"Cross-process trace stitching — {num_shards} worker processes, "
        f"one exact estimate under one root span",
    )
    emit(
        "E19_obs_stitched_trace", "E19 — cross-process trace stitching", body,
        results_dir, benchmark=benchmark,
        extra_info={"spans": len(spans), "distinct_trace_ids": len(trace_ids)},
    )
    assert trace_ids == {trace_id}, (
        f"expected one stitched trace {trace_id}, got ids {trace_ids}"
    )
    assert os.getpid() in pids, "no coordinator-side span collected"
    assert worker_pids <= pids, (
        f"missing spans from worker pids {worker_pids - pids}"
    )
    assert any(name.startswith("worker.") for name in names)
