"""E9 — Appendix C.3: impact of the dampened scale-up factor c_s.

Reproduces the discussion of the dampening factor: larger c_s reduces
underestimation at mid/high thresholds but can introduce overestimation
with larger variance; c_s in [0.1, 0.5] is the recommended range, and the
adaptive choice c_s = n_L/δ (LSH-SS(D)) is the paper's default.
"""

from __future__ import annotations

import numpy as np

from benchmarks._helpers import emit, format_table
from repro.core import LSHSSEstimator
from repro.evaluation.metrics import summarize_trials

THRESHOLDS = [0.5, 0.6, 0.7, 0.8, 0.9]
CS_SETTINGS = {"no dampening": None, "cs=0.1": 0.1, "cs=0.5": 0.5, "cs=1.0": 1.0, "auto (nL/δ)": "auto"}


def test_cs_dampening_factor(
    benchmark, dblp_index, dblp_histogram, results_dir, num_trials
):
    table = dblp_index.primary_table

    def run():
        rows = []
        for label, dampening in CS_SETTINGS.items():
            estimator = LSHSSEstimator(table, dampening=dampening)
            for threshold in THRESHOLDS:
                true_size = dblp_histogram.join_size(threshold)
                values = [
                    estimator.estimate(threshold, random_state=seed).value
                    for seed in range(num_trials)
                ]
                summary = summarize_trials(values, true_size)
                rows.append(
                    {
                        "cs": label,
                        "tau": threshold,
                        "under": summary.mean_underestimation,
                        "over": summary.mean_overestimation,
                        "std": summary.std_estimate,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    body = format_table(
        ["c_s", "tau", "underest. %", "overest. %", "STD"],
        [
            [row["cs"], f"{row['tau']:.1f}", 100 * row["under"], 100 * row["over"], row["std"]]
            for row in rows
        ],
        float_format="{:.1f}",
    )

    def mean_under(label):
        return float(np.mean([row["under"] for row in rows if row["cs"] == label]))

    def mean_std(label):
        return float(np.mean([row["std"] for row in rows if row["cs"] == label]))

    emit(
        "E9_cs_dampening",
        "Appendix C.3 — impact of the dampened scale-up factor c_s (DBLP-like)",
        body,
        results_dir,
        benchmark=benchmark,
        extra_info={
            "mean_underestimation_no_dampening": mean_under("no dampening"),
            "mean_underestimation_cs_0.5": mean_under("cs=0.5"),
        },
    )

    # Dampening reduces (i.e. raises toward zero) the underestimation...
    assert mean_under("cs=0.5") >= mean_under("no dampening") - 1e-9
    # ...but a larger c_s cannot shrink the spread of the estimates.
    assert mean_std("cs=1.0") >= mean_std("no dampening") - 1e-9
