"""Shared helpers for the benchmark suite (output formatting and saving)."""

from __future__ import annotations

import os
import signal
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np
import pytest

from repro.evaluation.report import format_table, records_to_markdown, series_table
from repro.evaluation.runner import SweepRecord
from repro.streaming import ChangeLog, Delete, Insert


def env_int(name: str, default: int) -> int:
    """An integer from the environment, falling back on garbage/absence."""
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


def env_float(name: str, default: float) -> float:
    """A float from the environment, falling back on garbage/absence."""
    try:
        return float(os.environ.get(name, default))
    except ValueError:
        return default


@pytest.hookimpl(hookwrapper=True)
def hard_timeout_runtest_call(item):
    """Enforce ``@pytest.mark.timeout(seconds)`` as a hard SIGALRM deadline.

    Bound as ``pytest_runtest_call`` by BOTH tests/conftest.py and
    benchmarks/conftest.py, so the multi-process cluster tests *and* the
    bench_cluster gates fail fast on a deadlocked worker instead of
    hanging the job (the container has no pytest-timeout plugin; this
    covers the same need on POSIX).
    """
    marker = item.get_closest_marker("timeout")
    if marker is None or not hasattr(signal, "SIGALRM"):
        yield
        return
    seconds = int(marker.args[0]) if marker.args else 120

    def _on_alarm(signum, frame):  # pragma: no cover - only fires on deadlock
        raise TimeoutError(
            f"hard {seconds}s test timeout exceeded — a worker process or "
            "the coordinator is likely deadlocked"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def emit(
    experiment_id: str,
    title: str,
    body: str,
    results_dir: Path,
    *,
    benchmark=None,
    extra_info: Optional[Dict[str, object]] = None,
) -> None:
    """Print an experiment's table and persist it under ``benchmarks/results``.

    Parameters
    ----------
    experiment_id:
        File stem, e.g. ``"E3_fig2_dblp_accuracy"``.
    title:
        Human-readable experiment title (includes the paper artefact).
    body:
        The already-rendered table text.
    results_dir:
        Destination directory (the ``results_dir`` fixture).
    benchmark:
        Optional pytest-benchmark fixture; headline numbers are attached to
        ``benchmark.extra_info`` so they survive in the benchmark JSON.
    extra_info:
        Key → value summary for ``benchmark.extra_info``.
    """
    text = f"== {title} ==\n{body}\n"
    print("\n" + text)
    output_path = results_dir / f"{experiment_id}.md"
    output_path.write_text(f"# {title}\n\n```\n{body}\n```\n", encoding="utf-8")
    if benchmark is not None and extra_info:
        for key, value in extra_info.items():
            benchmark.extra_info[key] = value


def accuracy_series(records: Sequence[SweepRecord], title: str) -> str:
    """Render an accuracy/variance sweep the way Figures 2/3/9 report it."""
    return series_table(records, title=title) + "\n\n" + records_to_markdown(records)


def churn_log(collection, operations: int, *, seed: int) -> ChangeLog:
    """The canonical insert/delete churn stream the scale-out gates replay.

    ~30% deletes of a random live id, the rest inserts of random corpus
    rows, ids assigned sequentially (mirrors the tests'
    ``churn_log_factory`` fixture).
    """
    rng = np.random.default_rng(seed)
    log = ChangeLog()
    live: List[int] = []
    next_id = 0
    for _ in range(operations):
        if live and rng.random() < 0.3:
            victim = int(rng.choice(live))
            live.remove(victim)
            log.append(Delete(victim))
        else:
            log.append(Insert(collection.row_dict(int(rng.integers(0, collection.size)))))
            live.append(next_id)
            next_id += 1
    return log


__all__ = [
    "emit",
    "accuracy_series",
    "format_table",
    "churn_log",
    "env_int",
    "env_float",
    "hard_timeout_runtest_call",
]
