"""Shared helpers for the benchmark suite (output formatting and saving)."""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.evaluation.report import format_table, records_to_markdown, series_table
from repro.evaluation.runner import SweepRecord


def emit(
    experiment_id: str,
    title: str,
    body: str,
    results_dir: Path,
    *,
    benchmark=None,
    extra_info: Optional[Dict[str, object]] = None,
) -> None:
    """Print an experiment's table and persist it under ``benchmarks/results``.

    Parameters
    ----------
    experiment_id:
        File stem, e.g. ``"E3_fig2_dblp_accuracy"``.
    title:
        Human-readable experiment title (includes the paper artefact).
    body:
        The already-rendered table text.
    results_dir:
        Destination directory (the ``results_dir`` fixture).
    benchmark:
        Optional pytest-benchmark fixture; headline numbers are attached to
        ``benchmark.extra_info`` so they survive in the benchmark JSON.
    extra_info:
        Key → value summary for ``benchmark.extra_info``.
    """
    text = f"== {title} ==\n{body}\n"
    print("\n" + text)
    output_path = results_dir / f"{experiment_id}.md"
    output_path.write_text(f"# {title}\n\n```\n{body}\n```\n", encoding="utf-8")
    if benchmark is not None and extra_info:
        for key, value in extra_info.items():
            benchmark.extra_info[key] = value


def accuracy_series(records: Sequence[SweepRecord], title: str) -> str:
    """Render an accuracy/variance sweep the way Figures 2/3/9 report it."""
    return series_table(records, title=title) + "\n\n" + records_to_markdown(records)


__all__ = ["emit", "accuracy_series", "format_table"]
