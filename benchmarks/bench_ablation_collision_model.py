"""Ablation — idealised vs angular collision model for the analytical estimators.

The reproduction makes one design choice worth quantifying: Definition 3
idealises ``P(h(u)=h(v)) = sim(u,v)``, but Charikar's sign-random-projection
family actually collides with probability ``1 − θ/π``.  The analytical
estimators (J_U and LSH-S) can be run under either model; this ablation
quantifies how much the angular correction matters on the DBLP-like
corpus, for each threshold.

Expectation: the angular model is never worse on average, and it matters
most at mid/high thresholds where ``s^k`` is extremely sensitive to the
value of ``s`` plugged in.
"""

from __future__ import annotations

import numpy as np

from benchmarks._helpers import emit, format_table
from repro.core import LSHSEstimator, UniformityEstimator
from repro.evaluation.metrics import summarize_trials

THRESHOLDS = [0.3, 0.5, 0.7, 0.9]


def test_ablation_collision_model(
    benchmark, dblp_index, dblp_histogram, results_dir, num_trials
):
    table = dblp_index.primary_table

    def run():
        rows = []
        errors = {"ideal": [], "angular": []}
        for model in ("ideal", "angular"):
            uniformity = UniformityEstimator(table, collision_model=model)
            lsh_s = LSHSEstimator(table, collision_model=model)
            for threshold in THRESHOLDS:
                true_size = dblp_histogram.join_size(threshold)
                ju_value = uniformity.estimate(threshold).value
                s_values = [
                    lsh_s.estimate(threshold, random_state=seed).value
                    for seed in range(num_trials)
                ]
                s_summary = summarize_trials(s_values, true_size)
                ju_error = (ju_value - true_size) / true_size
                s_error = (s_summary.mean_estimate - true_size) / true_size
                errors[model].append(abs(s_error))
                rows.append(
                    [
                        model,
                        f"{threshold:.1f}",
                        true_size,
                        ju_value,
                        100 * ju_error,
                        s_summary.mean_estimate,
                        100 * s_error,
                    ]
                )
        return rows, {model: float(np.mean(values)) for model, values in errors.items()}

    rows, mean_abs_errors = benchmark.pedantic(run, rounds=1, iterations=1)

    body = format_table(
        ["collision model", "tau", "true J", "J_U", "J_U error %", "LSH-S mean", "LSH-S error %"],
        rows,
        float_format="{:.1f}",
    )
    emit(
        "E15_ablation_collision_model",
        "Ablation — idealised vs angular collision model for J_U and LSH-S (DBLP-like)",
        body,
        results_dir,
        benchmark=benchmark,
        extra_info={
            "lsh_s_mean_abs_error_ideal": mean_abs_errors["ideal"],
            "lsh_s_mean_abs_error_angular": mean_abs_errors["angular"],
        },
    )

    # Both models must at least produce feasible estimates; the table records
    # the magnitude of the difference for the design-choice discussion.
    for row in rows:
        assert 0.0 <= row[3] <= table.total_pairs
        assert 0.0 <= row[5] <= table.total_pairs
