"""E15 — sharded scale-out: ingest scaling, query cost, merge fidelity.

Three acceptance gates for the sharded subsystem (``repro.shard``):

1. **Ingest scaling** — routing a batch through the
   :class:`~repro.shard.ShardedMutableIndex` write path and ingesting the
   per-shard slices must scale near-linearly.  The gate uses the
   deployment model — one node per shard, with the router (coerce + batch
   hash + partition + merge bookkeeping) pipelined against the shard
   ingests across batches, so steady-state throughput is bounded by the
   *slowest stage*: ``rows / max(router, slowest shard)``.  In-process
   threads cannot parallelise the GIL-bound bucket work, hence the
   per-stage timing model rather than wall-clock threading.
   Gate: ≥ 2× single-shard throughput at S = 4.
2. **Query cost** — mutable-path ``cosine_pairs`` (pooled row store)
   must stay within 2× of the static path
   (:func:`repro.vectors.similarity.cosine_pairs` over the pre-normalised
   collection matrix), closing the E13 query-path gap.
3. **Merge fidelity** — after replaying a churn log, the sharded
   exact-mode estimate must be *bit-identical* to the unsharded
   streaming estimator's for the same seed, with identical strata.

Sizes scale down via ``REPRO_BENCH_SHARD_N`` for the CI smoke run.
"""

from __future__ import annotations

import os
import time
from typing import List, Tuple

import numpy as np

from benchmarks._helpers import churn_log, emit, format_table
from repro.shard import ShardedMutableIndex, ShardedStreamingEstimator, ShardRouter
from repro.streaming import MutableLSHIndex, StreamingEstimator
from repro.vectors import cosine_pairs as static_cosine_pairs

NUM_HASHES = 16
SEED = 211
THRESHOLD = 0.7
SHARD_COUNTS = (1, 2, 4, 8)
QUERY_PAIRS = 2000
QUERY_ROUNDS = 15


def _ingest_n() -> int:
    try:
        return int(os.environ.get("REPRO_BENCH_SHARD_N", 8000))
    except ValueError:
        return 8000


def _ingest_matrix(collection, rows: int):
    """Tile the corpus up to ``rows`` vectors (duplicates are fine here)."""
    from scipy import sparse

    repeats = rows // collection.size + 1
    return sparse.vstack([collection.matrix] * repeats, format="csr")[:rows]


def _sharded_ingest_times(matrix, num_shards: int) -> Tuple[float, float]:
    """(router_seconds, slowest_shard_seconds) for one prepared batch.

    Router side: coerce + batch hash + partition (``prepare_batch``) plus
    the facade's merge bookkeeping (``_track_insert``); shard side: each
    shard's ``insert_many_prepared`` over its slice, timed separately to
    model one node per shard.
    """
    sharded = ShardedMutableIndex(
        matrix.shape[1],
        num_shards=num_shards,
        num_hashes=NUM_HASHES,
        random_state=SEED,
        shard_estimators=False,
    )
    start = time.perf_counter()
    batch = sharded.prepare_batch(matrix)
    router_seconds = time.perf_counter() - start
    shard_seconds: List[float] = [0.0]
    for shard in sharded.shards:
        rows = np.flatnonzero(batch.shard_ids == shard.shard_id)
        if rows.size == 0:
            continue
        sub_ids = batch.ids[rows]
        sub_csr = batch.csr[rows]
        sub_signatures = [signatures[rows] for signatures in batch.signatures]
        start = time.perf_counter()
        shard.index.insert_many_prepared(sub_ids, sub_csr, sub_signatures)
        shard_seconds.append(time.perf_counter() - start)
    start = time.perf_counter()
    for position in range(len(batch)):
        sharded._track_insert(
            int(batch.ids[position]), batch.keys[position], int(batch.shard_ids[position])
        )
    router_seconds += time.perf_counter() - start
    return router_seconds, max(shard_seconds)


def test_sharded_ingest_scaling(benchmark, dblp_collection, results_dir):
    """Gate 1: ≥ 2× single-shard ingest throughput at 4 shards."""
    matrix = _ingest_matrix(dblp_collection, _ingest_n())
    num_rows = matrix.shape[0]

    def run():
        single = MutableLSHIndex(matrix.shape[1], num_hashes=NUM_HASHES, random_state=SEED)
        start = time.perf_counter()
        single.insert_many(matrix)
        single_seconds = time.perf_counter() - start
        rows = []
        speedups = {}
        for num_shards in SHARD_COUNTS:
            router_seconds, slowest = _sharded_ingest_times(matrix, num_shards)
            latency = router_seconds + slowest
            bottleneck = max(router_seconds, slowest, 1e-9)
            speedup = single_seconds / bottleneck
            speedups[num_shards] = speedup
            rows.append(
                [
                    num_shards,
                    router_seconds * 1000.0,
                    slowest * 1000.0,
                    latency * 1000.0,
                    num_rows / bottleneck,
                    speedup,
                ]
            )
        return single_seconds, rows, speedups

    single_seconds, rows, speedups = benchmark.pedantic(run, rounds=1, iterations=1)
    body = format_table(
        ["shards", "router (ms)", "slowest shard (ms)", "batch latency (ms)",
         "pipelined rows/s", "speedup vs 1 node"],
        rows,
        float_format="{:.2f}",
    )
    body += (
        f"\nsingle-node insert_many: {single_seconds * 1000.0:.2f} ms "
        f"({num_rows / max(single_seconds, 1e-9):.0f} rows/s); pipelined model: "
        "throughput = rows / max(router stage, slowest shard), one node per shard"
    )
    emit(
        "E15_sharded_ingest_scaling",
        f"Sharding — batched ingest scaling (n={num_rows}, k={NUM_HASHES})",
        body,
        results_dir,
        benchmark=benchmark,
        extra_info={f"speedup_S{num_shards}": value for num_shards, value in speedups.items()},
    )
    assert speedups[4] >= 2.0, (
        f"sharded ingest at 4 shards only {speedups[4]:.2f}x a single shard"
    )


def test_mutable_query_cost_vs_static(benchmark, dblp_collection, results_dir):
    """Gate 2: pooled-row-store cosine queries within 2× of the static path."""
    index = MutableLSHIndex.from_collection(
        dblp_collection, num_hashes=NUM_HASHES, random_state=SEED
    )
    rng = np.random.default_rng(SEED)
    left = rng.integers(0, dblp_collection.size, size=QUERY_PAIRS)
    right = rng.integers(0, dblp_collection.size, size=QUERY_PAIRS)
    # warm both caches (lazy norms / normalized_matrix) outside the timing
    mutable_values = index.cosine_pairs(left, right)
    static_values = static_cosine_pairs(dblp_collection, left, right)
    np.testing.assert_array_equal(mutable_values, static_values)

    def run():
        start = time.perf_counter()
        for _ in range(QUERY_ROUNDS):
            index.cosine_pairs(left, right)
        mutable_seconds = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(QUERY_ROUNDS):
            static_cosine_pairs(dblp_collection, left, right)
        static_seconds = time.perf_counter() - start
        return mutable_seconds, static_seconds

    mutable_seconds, static_seconds = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = mutable_seconds / max(static_seconds, 1e-9)
    body = format_table(
        ["path", "total (ms)", "per call (ms)"],
        [
            ["mutable (RowStore gather)", mutable_seconds * 1000.0,
             mutable_seconds / QUERY_ROUNDS * 1000.0],
            ["static (normalized_matrix)", static_seconds * 1000.0,
             static_seconds / QUERY_ROUNDS * 1000.0],
        ],
        float_format="{:.3f}",
    )
    body += f"\nmutable / static ratio: {ratio:.2f}x (gate: ≤ 2×); values bit-identical"
    emit(
        "E15_mutable_query_cost",
        f"Sharding — mutable-path cosine_pairs vs static path "
        f"({QUERY_PAIRS} pairs × {QUERY_ROUNDS} rounds)",
        body,
        results_dir,
        benchmark=benchmark,
        extra_info={"query_ratio": ratio},
    )
    assert ratio <= 2.0, f"mutable-path queries {ratio:.2f}x the static path"


def test_sharded_estimates_bit_identical(dblp_collection, results_dir):
    """Gate 3: merged exact estimates == unsharded estimates, bit for bit."""
    log = churn_log(dblp_collection, 600, seed=SEED)
    unsharded = MutableLSHIndex(
        dblp_collection.dimension, num_hashes=NUM_HASHES, random_state=SEED
    )
    log.replay(unsharded)
    reference = StreamingEstimator(unsharded, random_state=0)
    rows = []
    for num_shards in (2, 4, 7):
        sharded = ShardedMutableIndex(
            dblp_collection.dimension,
            num_shards=num_shards,
            num_hashes=NUM_HASHES,
            random_state=SEED,
            shard_estimators=False,
        )
        with ShardRouter(sharded, batch_size=64) as router:
            router.replay(log)
        assert sharded.num_collision_pairs == unsharded.num_collision_pairs
        assert sharded.num_non_collision_pairs == unsharded.num_non_collision_pairs
        estimator = ShardedStreamingEstimator(sharded)
        for query_seed in (11, 99):
            merged = estimator.estimate(THRESHOLD, random_state=query_seed, mode="exact")
            expected = reference.estimate(THRESHOLD, random_state=query_seed, mode="exact")
            assert merged.value == expected.value, (
                f"S={num_shards}, seed={query_seed}: {merged.value} != {expected.value}"
            )
        rows.append([num_shards, sharded.size, sharded.num_collision_pairs, merged.value])
    emit(
        "E15_sharded_merge_fidelity",
        f"Sharding — merged estimates bit-identical to unsharded (τ={THRESHOLD})",
        format_table(["shards", "n", "N_H", "estimate (== unsharded)"], rows,
                     float_format="{:.1f}"),
        results_dir,
    )
