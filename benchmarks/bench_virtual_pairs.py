"""E14 — virtual-bucket pair enumeration: packed-key dedup vs Python set.

``LSHIndex.virtual_collision_pairs`` used to deduplicate the pairs of the
virtual stratum H with a Python ``set`` of ``(u, v)`` tuples, paying
per-pair interpreter overhead.  The current implementation packs each
pair into a single ``int64`` key (``u * n + v``) and deduplicates with
one ``np.unique``.  This benchmark keeps the legacy strategy alive as a
reference, checks both produce the identical pair set, and reports the
speedup.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks._helpers import emit, format_table


def _legacy_virtual_pairs(index):
    """The pre-vectorisation implementation (set of tuples, Python loops)."""
    seen = set()
    lefts, rights = [], []
    for table in index.tables:
        for u, v in table.iter_collision_pairs():
            key = (u, v) if u < v else (v, u)
            if key in seen:
                continue
            seen.add(key)
            lefts.append(key[0])
            rights.append(key[1])
    return np.asarray(lefts, dtype=np.int64), np.asarray(rights, dtype=np.int64)


def test_virtual_pair_dedup_speedup(benchmark, dblp_multi_index, results_dir):
    index = dblp_multi_index

    def run():
        start = time.perf_counter()
        legacy_left, legacy_right = _legacy_virtual_pairs(index)
        legacy_seconds = time.perf_counter() - start
        start = time.perf_counter()
        left, right = index.virtual_collision_pairs()
        packed_seconds = time.perf_counter() - start
        return legacy_left, legacy_right, legacy_seconds, left, right, packed_seconds

    legacy_left, legacy_right, legacy_seconds, left, right, packed_seconds = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )

    # identical pair sets (the packed path returns them key-sorted)
    legacy_sorted = sorted(zip(legacy_left.tolist(), legacy_right.tolist()))
    packed_sorted = list(zip(left.tolist(), right.tolist()))
    assert packed_sorted == legacy_sorted

    speedup = legacy_seconds / max(packed_seconds, 1e-9)
    rows = [
        ["set of tuples (legacy)", legacy_seconds * 1000.0, 1.0],
        ["packed int64 + np.unique", packed_seconds * 1000.0, speedup],
    ]
    emit(
        "E14_virtual_pair_dedup",
        f"Virtual-bucket dedup — {left.size} unique pairs over "
        f"{len(index)} tables (n={index.collection.size})",
        format_table(["strategy", "runtime (ms)", "speedup"], rows, float_format="{:.2f}"),
        results_dir,
        benchmark=benchmark,
        extra_info={"num_pairs": int(left.size), "speedup": speedup},
    )
