"""E12 — §6.2 runtime comparison of the estimators.

The paper reports wall-clock estimation times (LSH-SS < 1s, LSH-S ~1s,
LC ~3s, RS ~0.8s on 800K vectors).  Absolute numbers are hardware- and
scale-dependent; what must hold is that every estimator is dramatically
cheaper than executing the exact join, and that LSH-SS's cost is in the
same ballpark as plain random sampling (both examine Θ(n) pairs).

This benchmark uses pytest-benchmark's timing machinery directly (one
benchmarked estimator per test) so the usual benchmark table doubles as
the runtime comparison.
"""

from __future__ import annotations

import time

from benchmarks._helpers import emit, format_table
from repro.core import (
    LSHSEstimator,
    LSHSSEstimator,
    LatticeCountingEstimator,
    RandomPairSampling,
    UniformityEstimator,
)
from repro.join import exact_join_size

THRESHOLD = 0.7


def test_runtime_lsh_ss(benchmark, dblp_index):
    estimator = LSHSSEstimator(dblp_index.primary_table)
    benchmark(lambda: estimator.estimate(THRESHOLD, random_state=0))


def test_runtime_lsh_ss_dampened(benchmark, dblp_index):
    estimator = LSHSSEstimator(dblp_index.primary_table, dampening="auto")
    benchmark(lambda: estimator.estimate(THRESHOLD, random_state=0))


def test_runtime_lsh_s(benchmark, dblp_index):
    estimator = LSHSEstimator(dblp_index.primary_table)
    benchmark(lambda: estimator.estimate(THRESHOLD, random_state=0))


def test_runtime_random_sampling(benchmark, dblp_collection):
    estimator = RandomPairSampling(dblp_collection)
    benchmark(lambda: estimator.estimate(THRESHOLD, random_state=0))


def test_runtime_uniformity(benchmark, dblp_index):
    estimator = UniformityEstimator(dblp_index.primary_table)
    benchmark(lambda: estimator.estimate(THRESHOLD, random_state=0))


def test_runtime_lattice_counting_estimate(benchmark, dblp_index):
    estimator = LatticeCountingEstimator(dblp_index.primary_table)
    benchmark(lambda: estimator.estimate(THRESHOLD, random_state=0))


def test_runtime_summary_vs_exact_join(
    benchmark, dblp_collection, dblp_index, results_dir
):
    """Aggregate comparison including the exact join, persisted to results/."""

    def run():
        table = dblp_index.primary_table
        estimators = {
            "LSH-SS": LSHSSEstimator(table),
            "LSH-S": LSHSEstimator(table),
            "J_U": UniformityEstimator(table),
            "LC": LatticeCountingEstimator(table),
            "RS(pop)": RandomPairSampling(dblp_collection),
        }
        rows = []
        for name, estimator in estimators.items():
            start = time.perf_counter()
            for seed in range(3):
                estimator.estimate(THRESHOLD, random_state=seed)
            elapsed = (time.perf_counter() - start) / 3
            rows.append([name, elapsed * 1000.0])
        start = time.perf_counter()
        exact_join_size(dblp_collection, THRESHOLD)
        rows.append(["exact join (oracle)", (time.perf_counter() - start) * 1000.0])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    body = format_table(["method", "runtime (ms)"], rows, float_format="{:.2f}")
    emit(
        "E12_runtime",
        "§6.2 — estimation runtime comparison at tau = 0.7 (DBLP-like)",
        body,
        results_dir,
        benchmark=benchmark,
        extra_info={row[0]: row[1] for row in rows},
    )

    runtime = {row[0]: row[1] for row in rows}
    assert runtime["LSH-SS"] < runtime["exact join (oracle)"]
