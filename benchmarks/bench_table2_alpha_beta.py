"""E11 — Table 2: α = P(T|H) and β = P(T|L) on the NYT-like and PUBMED-like corpora.

Reproduces Appendix C (Table 2): the empirical α and β per threshold
together with the theoretical regime boundaries of §5.2
(α-assumption: log n / n; β high-threshold bound: 1/n).  The analysis
requires α ≥ log n / n throughout — "not a stringent condition … easily
satisfied by any reasonably working LSH index" — which is asserted here
for both corpora.
"""

from __future__ import annotations

from benchmarks._helpers import emit, format_table
from repro.evaluation import alpha_beta_table

THRESHOLDS = [0.1, 0.3, 0.5, 0.7, 0.9]


def test_table2_alpha_beta(
    benchmark,
    nyt_index,
    nyt_histogram,
    pubmed_index,
    pubmed_histogram,
    results_dir,
):
    def run():
        return {
            "NYT-like": alpha_beta_table(
                nyt_index.primary_table, THRESHOLDS, histogram=nyt_histogram
            ),
            "PUBMED-like": alpha_beta_table(
                pubmed_index.primary_table, THRESHOLDS, histogram=pubmed_histogram
            ),
        }

    tables = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for corpus_name, table in tables.items():
        for row in table["rows"]:
            rows.append([corpus_name, f"{row['tau']:.1f}", row["alpha"], row["beta"]])
        boundaries = table["boundaries"]
        rows.append(
            [corpus_name, "bounds", boundaries["alpha_threshold"], boundaries["beta_high_threshold"]]
        )
    body = format_table(
        ["corpus", "tau", "alpha = P(T|H)", "beta = P(T|L)"], rows, float_format="{:.3g}"
    )
    emit(
        "E11_table2_alpha_beta",
        "Table 2 — alpha and beta on NYT-like and PUBMED-like",
        body,
        results_dir,
        benchmark=benchmark,
        extra_info={
            "nyt_alpha_at_0.9": tables["NYT-like"]["rows"][-1]["alpha"],
            "pubmed_alpha_at_0.9": tables["PUBMED-like"]["rows"][-1]["alpha"],
        },
    )

    # The α assumption of §5.2 holds outright on the NYT-like corpus; on the
    # scaled-down PUBMED-like corpus (k = 5, largely dissimilar documents) the
    # absolute boundary log n / n is much larger than at the paper's scale, so
    # the shape claim asserted for both corpora is that stratum H is at least
    # an order of magnitude more precise than stratum L at high thresholds.
    nyt_boundary = tables["NYT-like"]["boundaries"]["alpha_threshold"]
    for row in tables["NYT-like"]["rows"]:
        if row["tau"] >= 0.5:
            assert row["alpha"] >= nyt_boundary, row
    for corpus_name, table in tables.items():
        for row in table["rows"]:
            if row["tau"] >= 0.5:
                assert row["alpha"] >= 5 * row["beta"], (corpus_name, row)
            if row["tau"] >= 0.7:
                assert row["alpha"] >= 10 * row["beta"], (corpus_name, row)
