"""E5 — Figure 4: impact of the number of hash functions k (LSH-SS vs LSH-S).

Reproduces Figure 4(a)/(b): relative error at τ = 0.5 and τ = 0.8 as k
varies over {10, 20, 30, 40, 50}.  The paper's finding: LSH-SS is largely
insensitive to k, while LSH-S is highly sensitive because its conditional
probability estimates depend on f(s) = s^k.
"""

from __future__ import annotations

import numpy as np

from benchmarks._helpers import emit, format_table
from repro.core import LSHSEstimator, LSHSSEstimator
from repro.lsh import LSHTable, SignRandomProjectionFamily

K_VALUES = [10, 20, 30, 40, 50]
THRESHOLDS = [0.5, 0.8]


def test_fig4_impact_of_k(
    benchmark, dblp_collection, dblp_histogram, results_dir, num_trials
):
    def run():
        rows = []
        for num_hashes in K_VALUES:
            family = SignRandomProjectionFamily(num_hashes, random_state=100 + num_hashes)
            table = LSHTable(family, dblp_collection)
            lsh_ss = LSHSSEstimator(table)
            lsh_s = LSHSEstimator(table)
            for threshold in THRESHOLDS:
                true_size = dblp_histogram.join_size(threshold)
                ss_values = [
                    lsh_ss.estimate(threshold, random_state=seed).value
                    for seed in range(num_trials)
                ]
                s_values = [
                    lsh_s.estimate(threshold, random_state=seed).value
                    for seed in range(num_trials)
                ]
                rows.append(
                    {
                        "k": num_hashes,
                        "tau": threshold,
                        "true": true_size,
                        "lsh_ss_error": (np.mean(ss_values) - true_size) / true_size,
                        "lsh_s_error": (np.mean(s_values) - true_size) / true_size,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    body = format_table(
        ["k", "tau", "true J", "LSH-SS error %", "LSH-S error %"],
        [
            [row["k"], f"{row['tau']:.1f}", row["true"],
             100 * row["lsh_ss_error"], 100 * row["lsh_s_error"]]
            for row in rows
        ],
        float_format="{:.1f}",
    )

    # Spread (max - min) of the error across k, per threshold and estimator.
    def spread(estimator_key, threshold):
        errors = [row[estimator_key] for row in rows if row["tau"] == threshold]
        return max(errors) - min(errors)

    emit(
        "E5_fig4_impact_k",
        "Figure 4 — impact of k on accuracy at tau = 0.5 and 0.8 (DBLP-like)",
        body,
        results_dir,
        benchmark=benchmark,
        extra_info={
            "lsh_ss_error_spread_tau_0.8": spread("lsh_ss_error", 0.8),
            "lsh_s_error_spread_tau_0.8": spread("lsh_s_error", 0.8),
        },
    )

    # LSH-SS error varies with k far less than LSH-S error at tau = 0.8.
    assert spread("lsh_ss_error", 0.8) <= spread("lsh_s_error", 0.8)
