"""Shared fixtures for the benchmark suite.

Every benchmark reproduces one table or figure of the paper (see
``benchmarks/__init__.py`` for the experiment index).  The corpora are synthetic
analogues of DBLP / NYT / PUBMED at laptop scale; their sizes and the
number of trials can be adjusted through environment variables:

* ``REPRO_BENCH_DBLP_N``    (default 3000)
* ``REPRO_BENCH_NYT_N``     (default 2000)
* ``REPRO_BENCH_PUBMED_N``  (default 2000)
* ``REPRO_BENCH_TRIALS``    (default 10; the paper uses 100)

Each benchmark prints the rows/series the corresponding figure reports
and also writes them to ``benchmarks/results/<experiment>.md`` so the
output survives the pytest run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from benchmarks._helpers import env_int as _env_int
from benchmarks._helpers import hard_timeout_runtest_call as pytest_runtest_call  # noqa: F401
from repro.datasets import make_dblp_like, make_nyt_like, make_pubmed_like
from repro.join.histogram import SimilarityHistogram
from repro.lsh import LSHIndex

RESULTS_DIR = Path(__file__).parent / "results"

THRESHOLD_GRID = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]


@pytest.fixture(scope="session")
def num_trials() -> int:
    return _env_int("REPRO_BENCH_TRIALS", 10)


@pytest.fixture(scope="session")
def threshold_grid():
    return list(THRESHOLD_GRID)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


# --- DBLP-like ---------------------------------------------------------------


@pytest.fixture(scope="session")
def dblp_corpus():
    return make_dblp_like(num_vectors=_env_int("REPRO_BENCH_DBLP_N", 3000), random_state=7)


@pytest.fixture(scope="session")
def dblp_collection(dblp_corpus):
    return dblp_corpus.collection


@pytest.fixture(scope="session")
def dblp_histogram(dblp_collection):
    return SimilarityHistogram(dblp_collection)


@pytest.fixture(scope="session")
def dblp_index(dblp_collection):
    """The paper's default configuration for DBLP: k = 20, one table."""
    return LSHIndex(dblp_collection, num_hashes=20, num_tables=1, random_state=42)


@pytest.fixture(scope="session")
def dblp_multi_index(dblp_collection):
    """A 3-table index for the multi-table extension benchmarks (§B.2.1)."""
    return LSHIndex(dblp_collection, num_hashes=20, num_tables=3, random_state=43)


# --- NYT-like ----------------------------------------------------------------


@pytest.fixture(scope="session")
def nyt_corpus():
    return make_nyt_like(num_vectors=_env_int("REPRO_BENCH_NYT_N", 2000), random_state=11)


@pytest.fixture(scope="session")
def nyt_collection(nyt_corpus):
    return nyt_corpus.collection


@pytest.fixture(scope="session")
def nyt_histogram(nyt_collection):
    return SimilarityHistogram(nyt_collection)


@pytest.fixture(scope="session")
def nyt_index(nyt_collection):
    return LSHIndex(nyt_collection, num_hashes=20, num_tables=1, random_state=44)


# --- PUBMED-like -------------------------------------------------------------


@pytest.fixture(scope="session")
def pubmed_corpus():
    return make_pubmed_like(num_vectors=_env_int("REPRO_BENCH_PUBMED_N", 2000), random_state=13)


@pytest.fixture(scope="session")
def pubmed_collection(pubmed_corpus):
    return pubmed_corpus.collection


@pytest.fixture(scope="session")
def pubmed_histogram(pubmed_collection):
    return SimilarityHistogram(pubmed_collection)


@pytest.fixture(scope="session")
def pubmed_index(pubmed_collection):
    """The paper uses k = 5 for PUBMED (Appendix C.4)."""
    return LSHIndex(pubmed_collection, num_hashes=5, num_tables=1, random_state=45)
