"""E18 — unified engine: facade overhead and cross-backend fidelity.

Two acceptance gates for the engine front door (``repro.engine``):

1. **Facade overhead** — serving an estimate through
   :class:`~repro.engine.JoinEstimationEngine` (request coercion,
   delegation, provenance assembly) must cost ≤ 5 % over calling the
   identically-constructed underlying estimator directly, for both the
   static and the streaming backend.  Measured as best-of-rounds over
   batches of repeated calls so scheduler noise cancels; the gate is
   adjustable for noisy shared runners via ``REPRO_BENCH_ENGINE_GATE``
   (a ratio; default 1.05).
2. **Cross-backend fidelity** — for the same config seed, the engine's
   estimates must be *bit-identical* to direct construction on every
   backend (static vs hand-built ``LSHIndex`` + ``LSHSSEstimator``,
   streaming vs hand-built ``MutableLSHIndex`` + ``StreamingEstimator``),
   the sharded exact mode must equal the unsharded streaming exact mode,
   and a grow-rebalance through the engine must leave exact-mode
   estimates unchanged.

Corpus size scales via ``REPRO_BENCH_DBLP_N`` for the CI smoke run.
"""

from __future__ import annotations

import os
import time

from benchmarks._helpers import emit, format_table
from repro.core import LSHSSEstimator
from repro.engine import EngineConfig, EstimateRequest, JoinEstimationEngine
from repro.lsh import LSHIndex
from repro.streaming import MutableLSHIndex, StreamingEstimator

NUM_HASHES = 16
SEED = 307
THRESHOLD = 0.7
CALLS_PER_ROUND = 20
ROUNDS = 5


def _overhead_gate() -> float:
    try:
        return float(os.environ.get("REPRO_BENCH_ENGINE_GATE", 1.05))
    except ValueError:
        return 1.05


def _best_round_seconds(call) -> float:
    """Fastest of ``ROUNDS`` batches of ``CALLS_PER_ROUND`` calls."""
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        for call_index in range(CALLS_PER_ROUND):
            call(call_index)
        best = min(best, time.perf_counter() - start)
    return best


def test_engine_facade_overhead(benchmark, dblp_collection, results_dir):
    """Gate 1: engine-served estimates cost ≤ 5 % over direct calls."""
    gate = _overhead_gate()
    dimension = dblp_collection.dimension

    # static: identical constructions (engine builds its index from seed+1)
    static_engine = JoinEstimationEngine(
        EngineConfig(backend="static", num_hashes=NUM_HASHES, seed=SEED)
    ).open()
    static_engine.ingest(dblp_collection)
    static_engine.estimate(THRESHOLD)  # force the lazy build out of the timing
    static_index = LSHIndex(dblp_collection, num_hashes=NUM_HASHES, random_state=SEED + 1)
    static_direct = LSHSSEstimator(static_index.primary_table)

    streaming_engine = JoinEstimationEngine(
        EngineConfig(backend="streaming", num_hashes=NUM_HASHES, seed=SEED,
                     dimension=dimension)
    ).open()
    streaming_engine.ingest(dblp_collection)
    streaming_index = MutableLSHIndex(dimension, num_hashes=NUM_HASHES, random_state=SEED + 1)
    streaming_estimator = StreamingEstimator(streaming_index, random_state=SEED + 2)
    streaming_index.insert_many(dblp_collection.matrix)

    def run():
        measurements = {}
        measurements["static"] = (
            _best_round_seconds(
                lambda i: static_engine.estimate(EstimateRequest(THRESHOLD, seed=i))
            ),
            _best_round_seconds(
                lambda i: static_direct.estimate(THRESHOLD, random_state=i)
            ),
        )
        measurements["streaming"] = (
            _best_round_seconds(
                lambda i: streaming_engine.estimate(
                    EstimateRequest(THRESHOLD, seed=i, mode="auto")
                )
            ),
            _best_round_seconds(
                lambda i: streaming_estimator.estimate(THRESHOLD, random_state=i, mode="auto")
            ),
        )
        return measurements

    measurements = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    ratios = {}
    for backend, (engine_seconds, direct_seconds) in measurements.items():
        ratio = engine_seconds / direct_seconds
        ratios[backend] = ratio
        per_call_us = (engine_seconds - direct_seconds) / CALLS_PER_ROUND * 1e6
        rows.append([
            backend,
            f"{direct_seconds / CALLS_PER_ROUND * 1e3:.3f}",
            f"{engine_seconds / CALLS_PER_ROUND * 1e3:.3f}",
            f"{ratio:.4f}",
            f"{per_call_us:+.1f}",
        ])
    body = format_table(
        ["backend", "direct ms/call", "engine ms/call", "ratio", "overhead µs/call"],
        rows,
        title=f"Engine facade overhead — n={dblp_collection.size}, "
        f"k={NUM_HASHES}, τ={THRESHOLD}, best of {ROUNDS}×{CALLS_PER_ROUND} calls "
        f"(gate ≤ {gate:.2f}×)",
    )
    emit(
        "E18_engine_overhead", "E18 — engine facade overhead", body, results_dir,
        benchmark=benchmark,
        extra_info={f"ratio_{backend}": ratio for backend, ratio in ratios.items()},
    )
    static_engine.close()
    streaming_engine.close()
    for backend, ratio in ratios.items():
        assert ratio <= gate, (
            f"{backend} backend facade overhead {ratio:.4f}× exceeds the {gate:.2f}× gate"
        )


def test_engine_cross_backend_fidelity(benchmark, dblp_collection, results_dir):
    """Gate 2: engine estimates are bit-identical to direct construction."""
    dimension = dblp_collection.dimension
    request = EstimateRequest(THRESHOLD, seed=11, mode="exact")
    checks = []

    def run():
        results = {}
        # static vs hand-built
        with JoinEstimationEngine(
            EngineConfig(backend="static", num_hashes=NUM_HASHES, seed=SEED)
        ) as engine:
            engine.ingest(dblp_collection)
            via_engine = engine.estimate(EstimateRequest(THRESHOLD, seed=11)).value
        index = LSHIndex(dblp_collection, num_hashes=NUM_HASHES, random_state=SEED + 1)
        direct = LSHSSEstimator(index.primary_table).estimate(
            THRESHOLD, random_state=11
        ).value
        results["static == direct"] = (via_engine, direct)

        # streaming vs hand-built
        with JoinEstimationEngine(
            EngineConfig(backend="streaming", num_hashes=NUM_HASHES, seed=SEED,
                         dimension=dimension)
        ) as engine:
            engine.ingest(dblp_collection)
            via_engine = engine.estimate(request).value
            streaming_value = via_engine
        mutable = MutableLSHIndex(dimension, num_hashes=NUM_HASHES, random_state=SEED + 1)
        estimator = StreamingEstimator(mutable, random_state=SEED + 2)
        mutable.insert_many(dblp_collection.matrix)
        direct = estimator.estimate(THRESHOLD, random_state=11, mode="exact").value
        results["streaming == direct"] = (via_engine, direct)

        # sharded exact vs unsharded exact, before and after a rebalance
        with JoinEstimationEngine(
            EngineConfig(backend="sharded", num_hashes=NUM_HASHES, seed=SEED,
                         dimension=dimension,
                         options={"num_shards": 4, "partitioner": "rendezvous"})
        ) as engine:
            engine.ingest(dblp_collection)
            sharded_before = engine.estimate(request).value
            engine.rebalance(num_shards=6)
            sharded_after = engine.estimate(request).value
        results["sharded == unsharded"] = (sharded_before, streaming_value)
        results["rebalanced == sharded"] = (sharded_after, sharded_before)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for label, (left, right) in results.items():
        identical = left == right
        checks.append((label, identical))
        rows.append([label, left, right, "yes" if identical else "NO"])
    body = format_table(
        ["check", "engine", "reference", "bit-identical"],
        rows,
        float_format="{:.6f}",
        title=f"Engine cross-backend fidelity — n={dblp_collection.size}, "
        f"k={NUM_HASHES}, τ={THRESHOLD}, seed={SEED}",
    )
    emit(
        "E18_engine_fidelity", "E18 — engine cross-backend fidelity", body, results_dir,
        benchmark=benchmark,
        extra_info={label: ok for label, ok in checks},
    )
    for label, identical in checks:
        assert identical, f"fidelity check failed: {label}"
