"""E16 — online shard rebalancing: minimal key movement, lossless migration.

Two acceptance gates for the rebalancing subsystem
(``repro.shard.rebalance``):

1. **Minimal movement** — resizing a rendezvous-partitioned cluster from
   ``S`` to ``S + 1`` shards must relocate at most ``1.5 / (S + 1)`` of
   the live bucket keys (the HRW expectation is ``1/(S+1)``; the factor
   covers sampling noise at laptop-scale key counts).  A modulo
   partitioner is reported alongside for contrast — it reshuffles
   ``≈ (S)/(S+1)`` of the keys, which is exactly why it cannot resize
   online.
2. **Lossless migration** — after growing and then shrinking a live
   cluster (two full key migrations over the snapshot/restore
   substrate), the merged exact-mode LSH-SS estimate must be
   **bit-identical** to an unsharded streaming estimator fed the same
   event sequence, with identical strata counts.

The migration throughput (vectors moved per second, plan + apply) is
reported for context but not gated — it is dominated by the snapshot
round-trip of the affected shards.

Sizes scale down via ``REPRO_BENCH_REBALANCE_N`` for the CI smoke run.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks._helpers import churn_log, emit, format_table
from repro.shard import (
    KeyPartitioner,
    RendezvousPartitioner,
    ShardedMutableIndex,
    ShardedStreamingEstimator,
    ShardRouter,
    plan_rebalance,
    rebalance_cluster,
)
from repro.shard.partition import key_signature_matrix
from repro.streaming import MutableLSHIndex, StreamingEstimator

NUM_HASHES = 16
SEED = 223
THRESHOLD = 0.7
RESIZE_SHARD_COUNTS = (2, 4, 8)


def _ingest_n() -> int:
    try:
        return int(os.environ.get("REPRO_BENCH_REBALANCE_N", 6000))
    except ValueError:
        return 6000


def _ingest_matrix(collection, rows: int):
    """Tile the corpus up to ``rows`` vectors (duplicates are fine here)."""
    from scipy import sparse

    repeats = rows // collection.size + 1
    return sparse.vstack([collection.matrix] * repeats, format="csr")[:rows]


def test_resize_moves_minimal_key_fraction(benchmark, dblp_collection, results_dir):
    """Gate 1: S → S+1 under rendezvous moves ≤ 1.5/(S+1) of bucket keys."""
    matrix = _ingest_matrix(dblp_collection, _ingest_n())

    def run():
        rows = []
        fractions = {}
        for num_shards in RESIZE_SHARD_COUNTS:
            cluster = ShardedMutableIndex(
                matrix.shape[1],
                num_shards=num_shards,
                num_hashes=NUM_HASHES,
                random_state=SEED,
                partitioner="rendezvous",
                shard_estimators=False,
            )
            cluster.insert_many(matrix)
            total_keys = len(cluster._bucket_refs)
            # modulo contrast: how many keys WOULD move under hash-mod
            keys = list(cluster._bucket_refs.keys())
            signatures = key_signature_matrix(keys, NUM_HASHES)
            modulo_before = KeyPartitioner(num_shards).shard_of_signatures(signatures)
            modulo_after = KeyPartitioner(num_shards + 1).shard_of_signatures(signatures)
            modulo_fraction = float(np.mean(modulo_before != modulo_after))
            start = time.perf_counter()
            plan = rebalance_cluster(cluster, num_shards=num_shards + 1)
            seconds = time.perf_counter() - start
            cluster.check_invariants()
            fractions[num_shards] = plan.moved_fraction
            rows.append(
                [
                    f"{num_shards}→{num_shards + 1}",
                    total_keys,
                    plan.moved_keys,
                    plan.moved_fraction,
                    1.5 / (num_shards + 1),
                    modulo_fraction,
                    plan.moved_vectors,
                    plan.moved_vectors / max(seconds, 1e-9),
                ]
            )
        return rows, fractions

    rows, fractions = benchmark.pedantic(run, rounds=1, iterations=1)
    body = format_table(
        ["resize", "bucket keys", "keys moved", "fraction", "gate ≤",
         "modulo would move", "vectors moved", "migrated rows/s"],
        rows,
        float_format="{:.3f}",
    )
    body += (
        "\nrendezvous (HRW) expectation: 1/(S+1) of keys move, all onto the "
        "new shard; hash-mod reshuffles ≈ S/(S+1)"
    )
    emit(
        "E16_rebalance_key_movement",
        f"Rebalance — minimal key movement on resize (n={matrix.shape[0]}, "
        f"k={NUM_HASHES})",
        body,
        results_dir,
        benchmark=benchmark,
        extra_info={
            f"moved_fraction_S{num_shards}": value
            for num_shards, value in fractions.items()
        },
    )
    for num_shards, fraction in fractions.items():
        assert fraction <= 1.5 / (num_shards + 1), (
            f"resize {num_shards}→{num_shards + 1} moved {fraction:.3f} of keys "
            f"(gate: ≤ {1.5 / (num_shards + 1):.3f})"
        )


def test_post_migration_estimates_bit_identical(dblp_collection, results_dir):
    """Gate 2: grow + shrink migrations leave exact estimates bit-identical."""
    log = churn_log(dblp_collection, 600, seed=SEED)
    unsharded = MutableLSHIndex(
        dblp_collection.dimension, num_hashes=NUM_HASHES, random_state=SEED
    )
    log.replay(unsharded)
    reference = StreamingEstimator(unsharded, random_state=0)
    rows = []
    for num_shards in (2, 3):
        cluster = ShardedMutableIndex(
            dblp_collection.dimension,
            num_shards=num_shards,
            num_hashes=NUM_HASHES,
            random_state=SEED,
            partitioner="rendezvous",
        )
        with ShardRouter(cluster, batch_size=64) as router:
            router.replay(log)
        grow = rebalance_cluster(cluster, num_shards=num_shards + 1)
        shrink = rebalance_cluster(cluster, num_shards=num_shards)
        cluster.check_invariants()
        assert cluster.num_collision_pairs == unsharded.num_collision_pairs
        assert cluster.num_non_collision_pairs == unsharded.num_non_collision_pairs
        estimator = ShardedStreamingEstimator(cluster)
        for query_seed in (11, 99):
            merged = estimator.estimate(THRESHOLD, random_state=query_seed, mode="exact")
            expected = reference.estimate(THRESHOLD, random_state=query_seed, mode="exact")
            assert merged.value == expected.value, (
                f"S={num_shards}, seed={query_seed}: {merged.value} != {expected.value}"
            )
        rows.append(
            [
                num_shards,
                cluster.size,
                grow.moved_keys + shrink.moved_keys,
                grow.moved_vectors + shrink.moved_vectors,
                merged.value,
            ]
        )
    emit(
        "E16_rebalance_migration_fidelity",
        f"Rebalance — post-migration exact estimates bit-identical (τ={THRESHOLD})",
        format_table(
            ["shards", "n", "keys migrated (grow+shrink)",
             "vectors migrated", "estimate (== unsharded)"],
            rows,
            float_format="{:.1f}",
        ),
        results_dir,
    )


def test_plan_only_is_cheap(benchmark, dblp_collection, results_dir):
    """Context: planning a rebalance is one vectorised pass over the keys."""
    matrix = _ingest_matrix(dblp_collection, _ingest_n())
    cluster = ShardedMutableIndex(
        matrix.shape[1],
        num_shards=4,
        num_hashes=NUM_HASHES,
        random_state=SEED,
        partitioner="rendezvous",
        shard_estimators=False,
    )
    cluster.insert_many(matrix)
    cluster.add_shards(5)
    partitioner = RendezvousPartitioner(5)

    plan = benchmark(lambda: plan_rebalance(cluster, partitioner))
    total_keys = len(cluster._bucket_refs)
    emit(
        "E16_rebalance_plan_cost",
        f"Rebalance — plan cost over {total_keys} bucket keys",
        format_table(
            ["bucket keys", "moves planned", "mean plan time (ms)"],
            [[total_keys, plan.moved_keys, benchmark.stats["mean"] * 1000.0]],
            float_format="{:.3f}",
        ),
        results_dir,
    )
