"""Quickstart: estimate a vector similarity join size with LSH-SS.

This mirrors the paper's workflow end to end, driven through the
unified estimation engine (the recommended front door):

1. build a collection of sparse vectors (here: a synthetic DBLP-like
   corpus of binary title/author vectors),
2. describe the deployment with a declarative ``EngineConfig`` (the
   engine builds the LSH table extended with bucket counts — the only
   addition the method needs on top of a conventional LSH index),
3. ask the engine for the join size at a threshold, with full
   provenance of which backend served it, and
4. compare against the exact join (which a real system could never
   afford to compute just for cardinality estimation).

The same ``EngineConfig`` with ``backend="streaming"`` or
``backend="sharded"`` serves the same estimates under churn or across
shards — no caller changes.  The low-level path (building the index and
estimator by hand) is shown at the end; for the same seeds it returns
bit-identical values, so either layer can be used interchangeably.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro import (
    EngineConfig,
    EstimateRequest,
    JoinEstimationEngine,
    LSHIndex,
    LSHSSEstimator,
    exact_join_size,
    make_dblp_like,
)


def main() -> None:
    print("Generating a DBLP-like corpus (2,000 binary vectors)...")
    corpus = make_dblp_like(num_vectors=2000, random_state=7)
    collection = corpus.collection
    print(f"  vectors: {collection.size}, dimensions: {collection.dimension}, "
          f"avg features/vector: {collection.nnz_per_row.mean():.1f}")
    print(f"  candidate pairs M = {collection.total_pairs:,}")

    print("\nOpening a static engine (one LSH table, k = 20 hash functions)...")
    config = EngineConfig(backend="static", num_hashes=20, seed=41)
    start = time.perf_counter()
    engine = JoinEstimationEngine(config).open()
    engine.ingest(collection)
    # the index is built lazily: force it with a first estimate
    details = engine.estimate(EstimateRequest(threshold=0.9, seed=0)).provenance
    print(f"  ready in {time.perf_counter() - start:.2f}s; "
          f"N_H = {details.backend_details['num_collision_pairs']} co-bucket pairs")

    print("\nEstimating the join size at several thresholds:")
    print(f"{'tau':>5} {'true J':>10} {'LSH-SS':>10} {'RS(pop)':>10}")
    for threshold in (0.2, 0.5, 0.8, 0.9):
        true_size = exact_join_size(collection, threshold)
        result = engine.estimate(EstimateRequest(threshold=threshold, seed=0))
        rs_result = engine.estimate(
            EstimateRequest(threshold=threshold, seed=0, estimator="rs")
        )
        wall_ms = result.provenance.wall_time_seconds * 1000
        print(f"{threshold:>5.1f} {true_size:>10,} {result.value:>10,.0f} "
              f"{rs_result.value:>10,.0f}   (LSH-SS took {wall_ms:.1f} ms)")

    print("\nEstimate details at tau = 0.9:")
    details = engine.estimate(EstimateRequest(threshold=0.9, seed=0)).details
    print(f"  stratum H contribution: {details['stratum_h']:.1f} "
          f"({details['true_in_sample_h']} true pairs in the sample)")
    print(f"  stratum L contribution: {details['stratum_l']:.1f} "
          f"(adaptive sampling examined {details['samples_taken_l']} pairs)")
    print(f"  SampleL reached its answer threshold: {details['reached_answer_threshold']}")
    engine.close()

    print("\nLow-level alternative (bit-identical for the same seeds):")
    index = LSHIndex(collection, num_hashes=20, num_tables=1, random_state=42)
    estimator = LSHSSEstimator(index.primary_table)
    estimate = estimator.estimate(0.9, random_state=0)
    print(f"  LSHSSEstimator over index.primary_table -> {estimate.value:,.0f} "
          f"(the engine's static backend builds exactly this from seed+1)")


if __name__ == "__main__":
    main()
