"""Quickstart: estimate a vector similarity join size with LSH-SS.

This mirrors the paper's workflow end to end:

1. build a collection of sparse vectors (here: a synthetic DBLP-like
   corpus of binary title/author vectors),
2. build an LSH table extended with bucket counts (the only addition the
   method needs on top of a conventional LSH index),
3. ask LSH-SS for the join size at a threshold, and
4. compare against the exact join (which a real system could never afford
   to compute just for cardinality estimation).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro import LSHIndex, LSHSSEstimator, RandomPairSampling, exact_join_size, make_dblp_like


def main() -> None:
    print("Generating a DBLP-like corpus (2,000 binary vectors)...")
    corpus = make_dblp_like(num_vectors=2000, random_state=7)
    collection = corpus.collection
    print(f"  vectors: {collection.size}, dimensions: {collection.dimension}, "
          f"avg features/vector: {collection.nnz_per_row.mean():.1f}")
    print(f"  candidate pairs M = {collection.total_pairs:,}")

    print("\nBuilding the LSH index (one table, k = 20 hash functions)...")
    start = time.perf_counter()
    index = LSHIndex(collection, num_hashes=20, num_tables=1, random_state=42)
    table = index.primary_table
    print(f"  built in {time.perf_counter() - start:.2f}s; "
          f"{table.num_buckets} buckets, N_H = {table.num_collision_pairs} co-bucket pairs")

    estimator = LSHSSEstimator(table)
    baseline = RandomPairSampling(collection)

    print("\nEstimating the join size at several thresholds:")
    print(f"{'tau':>5} {'true J':>10} {'LSH-SS':>10} {'RS(pop)':>10}")
    for threshold in (0.2, 0.5, 0.8, 0.9):
        true_size = exact_join_size(collection, threshold)
        start = time.perf_counter()
        estimate = estimator.estimate(threshold, random_state=0)
        lsh_ss_time = time.perf_counter() - start
        rs_estimate = baseline.estimate(threshold, random_state=0)
        print(f"{threshold:>5.1f} {true_size:>10,} {estimate.value:>10,.0f} "
              f"{rs_estimate.value:>10,.0f}   (LSH-SS took {lsh_ss_time * 1000:.1f} ms)")

    print("\nEstimate details at tau = 0.9:")
    details = estimator.estimate(0.9, random_state=0).details
    print(f"  stratum H contribution: {details['stratum_h']:.1f} "
          f"({details['true_in_sample_h']} true pairs in the sample)")
    print(f"  stratum L contribution: {details['stratum_l']:.1f} "
          f"(adaptive sampling examined {details['samples_taken_l']} pairs)")
    print(f"  SampleL reached its answer threshold: {details['reached_answer_threshold']}")


if __name__ == "__main__":
    main()
