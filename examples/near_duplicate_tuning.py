"""Near-duplicate detection: tuning the similarity threshold before joining.

A common data-cleaning workflow (the paper's §1 application list): find
near-duplicate documents in a corpus.  The engineer has a review budget —
say, at most 1,000 candidate pairs can be manually inspected — and must
pick the similarity threshold accordingly *before* running the expensive
all-pairs join.

This example uses LSH-SS to sweep the threshold range, picks the lowest
threshold whose estimated join size fits the budget, then runs the actual
All-Pairs join (the join-processing substrate) at the chosen threshold to
confirm the estimate was good enough to plan with.

Run with:  python examples/near_duplicate_tuning.py
"""

from __future__ import annotations

from repro import LSHIndex, LSHSSEstimator, all_pairs_join, make_nyt_like

REVIEW_BUDGET = 1_000


def main() -> None:
    print("Generating an NYT-like TF-IDF corpus (1,500 articles)...")
    corpus = make_nyt_like(num_vectors=1500, random_state=3)
    collection = corpus.collection

    print("Building the LSH index and the LSH-SS estimator...")
    index = LSHIndex(collection, num_hashes=20, random_state=9)
    estimator = LSHSSEstimator(index.primary_table, dampening="auto")

    print(f"\nSweeping thresholds (budget: {REVIEW_BUDGET} candidate pairs):")
    print(f"{'tau':>5} {'estimated pairs':>16} {'fits budget':>12}")
    chosen_threshold = None
    for threshold in (0.95, 0.9, 0.85, 0.8, 0.75, 0.7, 0.65, 0.6):
        estimate = estimator.estimate(threshold, random_state=0)
        fits = estimate.value <= REVIEW_BUDGET
        print(f"{threshold:>5.2f} {estimate.value:>16,.0f} {str(fits):>12}")
        if fits:
            chosen_threshold = threshold
    if chosen_threshold is None:
        print("No threshold fits the budget; raise the budget or the minimum threshold.")
        return

    # The lowest threshold that still fits the budget maximises recall.
    print(f"\nChosen threshold: {chosen_threshold:.2f} — running the actual All-Pairs join...")
    results = all_pairs_join(collection, chosen_threshold)
    print(f"  actual candidate pairs: {len(results):,} (budget {REVIEW_BUDGET:,})")
    over_budget = len(results) > REVIEW_BUDGET
    print(f"  budget respected: {not over_budget}")

    top = sorted(results, key=lambda item: -item[2])[:5]
    print("\nFive most similar pairs found:")
    for left, right, similarity in top:
        print(f"  documents ({left}, {right}) with cosine similarity {similarity:.3f}")


if __name__ == "__main__":
    main()
