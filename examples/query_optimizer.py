"""Query-optimiser scenario: a planner asking a live estimation service.

The paper motivates VSJ size estimation with query optimisation: a
similarity join is a primitive operator, and the optimiser needs its
output cardinality *before* running it to choose between plans.  This
example plays that scenario out for a query of the form

    SELECT ...
    FROM documents d1 JOIN documents d2
      ON cosine(d1.vector, d2.vector) >= :tau
    JOIN authors a ON a.doc_id = d1.id

The optimiser must decide whether to
  (plan A) run the similarity join first and probe the author table with
           its (hopefully small) result, or
  (plan B) scan the author table first and verify similarity per probe.

Plan A's cost is dominated by the similarity-join output size; plan B's
cost is essentially fixed.

Since PR 7 the estimates come from a *service*, the way a real planner
would get them: the example starts an in-process
:class:`repro.EstimationServer` (the same daemon ``repro serve`` runs),
ingests the corpus through a :class:`repro.ServeClient`, then asks for
one estimate per threshold over the wire — seeded, so the answers are
reproducible no matter how many other clients the daemon is serving.
The oracle (exact join size) and a naive random-sampling estimate are
computed locally for comparison, showing how badly a wrong cardinality
at a high threshold can mislead the optimiser.

Run with:  python examples/query_optimizer.py
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import (
    EngineConfig,
    EstimationServer,
    RandomPairSampling,
    ServeClient,
    SimilarityHistogram,
    make_dblp_like,
)

# Simple textbook cost model (arbitrary units per tuple touched).
COST_PER_JOIN_RESULT_PROBE = 4.0   # index probe into the author table
COST_PER_AUTHOR_VERIFY = 0.5       # similarity verification per author row
NUM_AUTHOR_ROWS = 400_000


@dataclass
class PlanChoice:
    threshold: float
    estimated_join_size: float
    plan: str
    cost_a: float
    cost_b: float


def choose_plan(estimated_join_size: float, threshold: float) -> PlanChoice:
    cost_a = estimated_join_size * COST_PER_JOIN_RESULT_PROBE
    cost_b = NUM_AUTHOR_ROWS * COST_PER_AUTHOR_VERIFY
    plan = "A (similarity join first)" if cost_a <= cost_b else "B (author scan first)"
    return PlanChoice(threshold, estimated_join_size, plan, cost_a, cost_b)


def main() -> None:
    print("Building the corpus...")
    corpus = make_dblp_like(num_vectors=2500, random_state=11)
    collection = corpus.collection
    random_sampling = RandomPairSampling(collection)

    print("Starting the estimation service and ingesting the corpus...")
    config = EngineConfig(
        backend="static", num_hashes=20, seed=4, dimension=collection.dimension
    )
    with EstimationServer(config) as server:
        with ServeClient(server.address) as client:
            client.ingest(collection)

            print("Computing the exact join sizes once "
                  "(the oracle the optimiser never has)...")
            oracle = SimilarityHistogram(collection)

            print(f"\n{'tau':>5} {'oracle J':>12} {'LSH-SS est.':>12} {'RS est.':>12} "
                  f"{'LSH-SS plan':>28} {'oracle plan':>28} {'RS plan':>28}")
            mismatches_rs = 0
            mismatches_lsh = 0
            for threshold in (0.3, 0.5, 0.7, 0.8, 0.9):
                true_size = oracle.join_size(threshold)
                # one estimate per plan decision, over the wire; the seed
                # rides in the request so the answer is reproducible even
                # with other clients hammering the daemon concurrently
                result = client.estimate(threshold, seed=1)
                lsh_estimate = result.value
                rs_estimate = random_sampling.estimate(threshold, random_state=1).value

                oracle_plan = choose_plan(true_size, threshold)
                lsh_plan = choose_plan(lsh_estimate, threshold)
                rs_plan = choose_plan(rs_estimate, threshold)
                mismatches_lsh += lsh_plan.plan != oracle_plan.plan
                mismatches_rs += rs_plan.plan != oracle_plan.plan

                print(f"{threshold:>5.1f} {true_size:>12,} {lsh_estimate:>12,.0f} "
                      f"{rs_estimate:>12,.0f} {lsh_plan.plan:>28} "
                      f"{oracle_plan.plan:>28} {rs_plan.plan:>28}")

            stats = client.stats()["server"]
            print(f"\nService: epoch {stats['epoch']}, "
                  f"{stats['connections']} connection(s), pid {stats['pid']}")

    print(f"\nPlan decisions differing from the oracle: "
          f"LSH-SS {mismatches_lsh}/5, RS(pop) {mismatches_rs}/5")
    print("A wrong cardinality at a high threshold flips the plan decision — the "
          "error-propagation argument (§1) for why reliable VSJ estimates matter.")


if __name__ == "__main__":
    main()
