"""General (non-self) vector similarity join between two collections.

Appendix B.2.2 of the paper extends the estimators to joins between two
different relations U and V — e.g. matching newly ingested documents
against an existing archive during deduplicated ingestion.  Both sides
are hashed with the *same* LSH functions so bucket keys are comparable;
stratum H becomes the set of cross pairs whose buckets share a key.

This example builds an "archive" and a "new batch" that share some
content, estimates the cross-join size with the general LSH-SS estimator
and a random-sampling baseline, and compares both against the exact
cross join.

Run with:  python examples/general_join_two_collections.py
"""

from __future__ import annotations

from repro import (
    GeneralLSHSSEstimator,
    GeneralRandomPairSampling,
    PairedLSHTable,
    SignRandomProjectionFamily,
    exact_general_join_size,
    make_dblp_like,
)


def main() -> None:
    print("Generating a corpus and splitting it into an archive and a new batch...")
    corpus = make_dblp_like(num_vectors=2400, random_state=17)
    collection = corpus.collection
    # The split interleaves records so planted duplicate clusters straddle the
    # two sides: the new batch genuinely contains near-copies of archive rows.
    archive = collection.subset(list(range(0, collection.size, 2)))
    new_batch = collection.subset(list(range(1, collection.size, 2)))
    print(f"  archive: {archive.size} vectors, new batch: {new_batch.size} vectors")
    print(f"  candidate cross pairs: {archive.size * new_batch.size:,}")

    print("\nHashing both sides with the same g = (h_1..h_20) and pairing the tables...")
    family = SignRandomProjectionFamily(20, random_state=29)
    paired = PairedLSHTable(family, archive, new_batch)
    print(f"  N_H (cross pairs sharing a bucket key): {paired.num_collision_pairs:,}")

    estimator = GeneralLSHSSEstimator(paired, dampening="auto")
    baseline = GeneralRandomPairSampling(archive, new_batch)

    print(f"\n{'tau':>5} {'exact J':>10} {'LSH-SS':>10} {'RS(pop)':>10}")
    for threshold in (0.3, 0.6, 0.8, 0.95):
        true_size = exact_general_join_size(archive, new_batch, threshold)
        lsh_estimate = estimator.estimate(threshold, random_state=0)
        rs_estimate = baseline.estimate(threshold, random_state=0)
        print(f"{threshold:>5.2f} {true_size:>10,} {lsh_estimate.value:>10,.0f} "
              f"{rs_estimate.value:>10,.0f}")

    print("\nA small estimated cross-join at a high threshold tells the ingestion "
          "pipeline it can afford exact verification of every candidate; a large "
          "one suggests batching or a higher threshold.")


if __name__ == "__main__":
    main()
