"""Observability walkthrough: metrics, spans, and the stats surface.

A join-size estimation service in production needs to answer three
operational questions without touching the estimator's math:

1. *How fast are we?* — per-call latency histograms and counters,
   collected by every engine into its own ``MetricsRegistry`` and
   attached to each reply (``result.provenance.metrics``), so a single
   response carries enough telemetry to debug it after the fact.
2. *Where did the time go?* — ``trace(name)`` spans build a tree per
   request; on a multi-process cluster the trace context rides the
   coordinator→worker protocol and the workers' spans ride back, so one
   estimate yields one stitched tree covering every process.
3. *What is the cluster doing overall?* — ``engine.stats()`` (or
   ``repro stats --config ...`` from the shell) returns the config, the
   backend's operational rows, and a metrics snapshot; per-worker
   snapshots merge associatively, so the fold is order-free.

Everything is silent by default and costs ≤ 3 % on the hot paths (gated
in ``benchmarks/bench_obs.py``); ``set_enabled(False)`` turns collection
off process-wide without losing what was already recorded.

Run with:  python examples/metrics_inspection.py
"""

from __future__ import annotations

from repro import (
    EngineConfig,
    EstimateRequest,
    JoinEstimationEngine,
    format_metric_name,
    get_tracer,
    histogram_quantile,
    make_dblp_like,
    set_enabled,
    trace,
)


def main() -> None:
    print("Building a streaming engine over a DBLP-like corpus...")
    corpus = make_dblp_like(num_vectors=1500, random_state=7)
    collection = corpus.collection
    engine = JoinEstimationEngine(
        EngineConfig(
            backend="streaming",
            num_hashes=16,
            seed=41,
            dimension=collection.dimension,
        )
    ).open()
    engine.ingest(collection)

    # ------------------------------------------------------------------
    # 1. per-request telemetry: every estimate under a span, metrics in
    #    the reply's provenance
    # ------------------------------------------------------------------
    get_tracer().drain()  # start from a clean span buffer
    with trace("example.request", client="metrics_inspection"):
        result = engine.estimate(EstimateRequest(0.8, seed=3, mode="auto"))
    print(f"\nestimate at tau=0.8: {result.value:,.0f} pairs "
          f"(mode={result.provenance.mode})")

    metrics = result.provenance.metrics
    print("\nmetrics shipped inside the reply (provenance.metrics):")
    for entry in metrics["counters"]:
        name = format_metric_name(entry["name"], entry["labels"])
        print(f"  {name} = {entry['value']:.0f}")
    for entry in metrics["histograms"]:
        if not entry["count"]:
            continue
        name = format_metric_name(entry["name"], entry["labels"])
        p99 = histogram_quantile(tuple(entry["buckets"]), entry["counts"], 0.99)
        print(f"  {name}: count={entry['count']} "
              f"mean={entry['sum'] / entry['count'] * 1e3:.2f}ms p99<={p99 * 1e3:.1f}ms")

    # ------------------------------------------------------------------
    # 2. the span tree for that one request
    # ------------------------------------------------------------------
    spans = get_tracer().drain()
    print(f"\nspan tree ({len(spans)} spans, one trace "
          f"{spans[-1].trace_id}):")
    by_parent = {}
    for span in spans:
        by_parent.setdefault(span.parent_id, []).append(span)

    def render(parent_id, depth):
        for span in by_parent.get(parent_id, ()):
            print(f"  {'  ' * depth}{span.name}  "
                  f"({span.duration * 1e3:.2f} ms, pid {span.pid})")
            render(span.span_id, depth + 1)

    render(None, 0)

    # ------------------------------------------------------------------
    # 3. the operational stats surface (repro stats --config ... is the
    #    CLI spelling of exactly this call)
    # ------------------------------------------------------------------
    stats = engine.stats()
    print(f"\nengine.stats(): backend={stats['config']['backend']}, "
          f"{len(stats['metrics']['counters'])} counters, "
          f"{len(stats['metrics']['histograms'])} histograms")

    # ------------------------------------------------------------------
    # 4. the kill switch: collection off, estimates unchanged
    # ------------------------------------------------------------------
    request = EstimateRequest(0.8, seed=3, mode="exact")
    value_on = engine.estimate(request).value
    set_enabled(False)
    value_off = engine.estimate(request).value
    set_enabled(True)
    print(f"\nbit-identical with collection on/off: {value_on == value_off} "
          f"({value_on:,.0f} pairs either way)")
    engine.close()


if __name__ == "__main__":
    main()
