"""Internal tuning helper: inspect synthetic-profile regime properties.

Run with ``python scripts/tune_profiles.py`` to print, per profile, the
true join sizes, the stratum probabilities (Table-1 style) and a quick
LSH-SS accuracy check.  Used while calibrating the dataset profiles so
that the scaled-down corpora exhibit the high/low-threshold regimes the
paper's analysis distinguishes (DESIGN.md, fidelity notes).
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.core import LSHSSEstimator, RandomPairSampling
from repro.datasets.synthetic import (
    PlantedClusterSpec,
    SyntheticCorpusConfig,
    generate_corpus,
)
from repro.evaluation import empirical_stratum_probabilities
from repro.join.histogram import SimilarityHistogram
from repro.lsh import LSHIndex


def inspect(name: str, config: SyntheticCorpusConfig, *, num_hashes: int = 20, seed: int = 0) -> None:
    start = time.time()
    corpus = generate_corpus(config, random_state=seed)
    collection = corpus.collection
    histogram = SimilarityHistogram(collection)
    index = LSHIndex(collection, num_hashes=num_hashes, random_state=seed + 1)
    table = index.primary_table
    n = collection.size
    thresholds = [0.1, 0.3, 0.5, 0.7, 0.9]
    probabilities = empirical_stratum_probabilities(table, thresholds, histogram=histogram)
    print(f"== {name}: n={n} avg_features={collection.nnz_per_row.mean():.1f} "
          f"NH={table.num_collision_pairs} M={collection.total_pairs} "
          f"log n/n={np.log2(n)/n:.2e} 1/n={1/n:.2e} ({time.time()-start:.1f}s)")
    for item in probabilities:
        print(f"   tau={item.threshold:.1f} J={item.join_size:>8d} "
              f"P(T|H)={item.probability_true_given_h:.3f} "
              f"P(H|T)={item.probability_h_given_true:.3f} "
              f"P(T|L)={item.probability_true_given_l:.2e}")
    estimator = LSHSSEstimator(table)
    dampened = LSHSSEstimator(table, dampening="auto")
    baseline = RandomPairSampling(collection)
    for threshold in thresholds:
        true_size = histogram.join_size(threshold)
        values = [estimator.estimate(threshold, random_state=s).value for s in range(8)]
        dampened_values = [dampened.estimate(threshold, random_state=s).value for s in range(8)]
        baseline_values = [baseline.estimate(threshold, random_state=s).value for s in range(8)]
        print(f"   tau={threshold:.1f} true={true_size:>8d} "
              f"LSH-SS={np.mean(values):>9.0f}±{np.std(values):<9.0f} "
              f"LSH-SS(D)={np.mean(dampened_values):>9.0f} "
              f"RS={np.mean(baseline_values):>9.0f}±{np.std(baseline_values):<9.0f}")


def dblp_config(num_vectors: int) -> SyntheticCorpusConfig:
    return SyntheticCorpusConfig(
        num_vectors=num_vectors,
        vocabulary_size=max(1000, 8 * num_vectors),
        zipf_exponent=0.9,
        mean_length=14.0,
        min_length=3,
        weighting="binary",
        planted_clusters=(
            PlantedClusterSpec(0.08, (1, 3), (0.0, 0.0, 0.02, 0.05, 0.1)),
            PlantedClusterSpec(0.30, (20, 35), (0.35, 0.45, 0.55, 0.65)),
        ),
    )


def nyt_config(num_vectors: int) -> SyntheticCorpusConfig:
    return SyntheticCorpusConfig(
        num_vectors=num_vectors,
        vocabulary_size=max(2000, 5 * num_vectors),
        zipf_exponent=1.05,
        mean_length=60.0,
        min_length=10,
        weighting="tfidf",
        planted_clusters=(
            PlantedClusterSpec(0.08, (1, 3), (0.0, 0.0, 0.02, 0.05)),
            PlantedClusterSpec(0.30, (20, 35), (0.35, 0.45, 0.55, 0.65)),
        ),
    )


def pubmed_config(num_vectors: int) -> SyntheticCorpusConfig:
    return SyntheticCorpusConfig(
        num_vectors=num_vectors,
        vocabulary_size=max(3000, 12 * num_vectors),
        zipf_exponent=1.0,
        mean_length=40.0,
        min_length=8,
        weighting="tfidf",
        planted_clusters=(
            PlantedClusterSpec(0.05, (1, 2), (0.0, 0.02, 0.05)),
            PlantedClusterSpec(0.20, (15, 30), (0.4, 0.5, 0.6)),
        ),
    )


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 3000
    inspect("DBLP-like", dblp_config(size), num_hashes=20)
    inspect("NYT-like", nyt_config(size // 2), num_hashes=20)
    inspect("PUBMED-like", pubmed_config(size // 2), num_hashes=5)
