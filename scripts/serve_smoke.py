"""CI smoke check for the ``repro serve`` daemon.

Proves the serving contract end to end through the real CLI entry
point, under load, inside hard deadlines:

1. start ``repro serve`` as a subprocess on an ephemeral port and parse
   the readiness line;
2. hammer it with a mixed burst — one writer thread ingesting change
   batches while several reader threads estimate concurrently (each
   over its own connection, retrying ``busy`` rejections);
3. assert the answers are **bit-identical** to a direct in-process
   engine fed the same seeds and the same event sequence;
4. send SIGTERM and assert a clean drain: exit code 0 and the
   "drained cleanly" line (every acknowledged write was committed).

Run from the repository root:  python scripts/serve_smoke.py
Exits 0 on success, 1 on any failed check (with a diagnostic on
stderr).  The whole script is bounded by a SIGALRM deadline so a hung
daemon fails the CI step instead of stalling it.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.engine import EngineConfig, EstimateRequest, JoinEstimationEngine  # noqa: E402
from repro.serve import ServeClient, connect_with_retry  # noqa: E402
from repro.streaming import Insert  # noqa: E402

HARD_DEADLINE_SECONDS = 300
DIMENSION = 24
NUM_HASHES = 12
SEED = 71
THRESHOLD = 0.7
READERS = 4
READS_PER_READER = 30
WRITE_BATCHES = 12
EVENTS_PER_BATCH = 20
IDENTITY_SEEDS = range(6)

CONFIG = {
    "backend": "streaming",
    "num_hashes": NUM_HASHES,
    "seed": SEED,
    "dimension": DIMENSION,
}


def _fail(message: str) -> None:
    print(f"serve-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def _events(count: int, seed: int) -> list:
    rng = np.random.default_rng(seed)
    rows = (rng.random((count, DIMENSION)) < 0.4) * rng.random((count, DIMENSION))
    rows[rows.sum(axis=1) == 0.0, 0] = 1.0
    return [Insert(row) for row in rows]


def main() -> None:
    signal.signal(
        signal.SIGALRM,
        lambda *_: _fail(f"hard {HARD_DEADLINE_SECONDS}s deadline exceeded"),
    )
    signal.alarm(HARD_DEADLINE_SECONDS)

    batches = [
        _events(EVENTS_PER_BATCH, seed=SEED + 1 + batch)
        for batch in range(WRITE_BATCHES)
    ]

    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        config_path = Path(tmp) / "engine.json"
        config_path.write_text(json.dumps(CONFIG))
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        print("serve-smoke: starting the daemon...")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--config", str(config_path), "--listen", "127.0.0.1:0"],
            stdout=subprocess.PIPE, text=True, env=env,
        )
        try:
            line = proc.stdout.readline()
            match = re.match(r"serving on ([\d.]+):(\d+)", line)
            if not match:
                _fail(f"no readiness line from the daemon, got {line!r}")
            address = (match.group(1), int(match.group(2)))
            print(f"serve-smoke: daemon ready on {address[0]}:{address[1]} "
                  f"pid={proc.pid}")

            # --- phase 2: mixed ingest + estimate burst ----------------
            errors: list = []
            estimates_done = [0]

            def writer() -> None:
                try:
                    with connect_with_retry(address) as client:
                        for batch in batches:
                            client.ingest(batch)
                except Exception as error:  # noqa: BLE001 - checked below
                    errors.append(error)

            def reader(offset: int) -> None:
                try:
                    with connect_with_retry(address) as client:
                        for call in range(READS_PER_READER):
                            result = client.estimate(
                                THRESHOLD,
                                seed=offset * READS_PER_READER + call,
                                mode="auto",
                            )
                            if result.value < 0:
                                raise AssertionError(
                                    f"negative estimate {result.value}"
                                )
                            estimates_done[0] += 1
                except Exception as error:  # noqa: BLE001 - checked below
                    errors.append(error)

            started = time.perf_counter()
            threads = [threading.Thread(target=writer)]
            threads += [
                threading.Thread(target=reader, args=(i,)) for i in range(READERS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - started
            if errors:
                _fail(f"burst worker raised: {errors[0]!r}")
            print(f"serve-smoke: burst ok — {estimates_done[0]} estimates + "
                  f"{WRITE_BATCHES} write batches in {elapsed:.1f}s")

            # --- phase 3: bit-identity vs a direct engine --------------
            direct = JoinEstimationEngine(EngineConfig(**CONFIG)).open()
            for batch in batches:
                direct.ingest(batch)
            direct.flush()
            with ServeClient(address) as client:
                client.flush()
                size = client.describe()["describe"]["size"]
                if size != WRITE_BATCHES * EVENTS_PER_BATCH:
                    _fail(f"daemon holds {size} rows, expected "
                          f"{WRITE_BATCHES * EVENTS_PER_BATCH}")
                for seed in IDENTITY_SEEDS:
                    served = client.estimate(THRESHOLD, seed=seed, mode="exact").value
                    expected = direct.estimate(
                        EstimateRequest(THRESHOLD, seed=seed, mode="exact")
                    ).value
                    if served != expected:
                        _fail(f"seed {seed}: served {served!r} != direct "
                              f"{expected!r} — the serve boundary changed "
                              "the estimate bits")
            direct.close()
            print(f"serve-smoke: bit-identity ok over "
                  f"{len(list(IDENTITY_SEEDS))} seeds")

            # --- phase 4: SIGTERM → clean drain ------------------------
            proc.send_signal(signal.SIGTERM)
            try:
                out, _ = proc.communicate(timeout=60)
            except subprocess.TimeoutExpired:
                _fail("daemon did not exit within 60s of SIGTERM")
            if proc.returncode != 0:
                _fail(f"daemon exited {proc.returncode} after SIGTERM; "
                      f"output:\n{out}")
            if "drained cleanly" not in out:
                _fail(f"no clean-drain confirmation in daemon output:\n{out}")
            print("serve-smoke: SIGTERM drain ok (exit 0, every acknowledged "
                  "write committed)")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)
    print("serve-smoke: PASS")


if __name__ == "__main__":
    main()
